"""Structural classification of acyclic queries.

Section 2.2 of the paper classifies attributes and relations of an
acyclic query (Figure 2):

* an attribute in exactly one relation is a **unique attribute**;
  otherwise it is a **join attribute**;
* an **island** is a relation with no join attribute;
* a **bud** is a relation with exactly one join attribute and no unique
  attribute;
* a **leaf** is a relation with at least one unique attribute and
  exactly one join attribute; its **neighbors** Γ(e) are the other
  relations sharing its join attribute.

Section 4.2 adds **stars** (Figure 5): a core ``e0`` with no unique
attributes plus ``k ≥ 1`` petals — leaves intersecting only the core —
such that the core connects to the rest of the query through at most
one join attribute.  Lemma 1 guarantees every nonempty acyclic query
contains an island, a bud, or a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.hypergraph import JoinQuery


def join_attributes(query: JoinQuery) -> frozenset[str]:
    """Attributes appearing in two or more relations."""
    occ = query.occurrences()
    return frozenset(a for a, es in occ.items() if len(es) >= 2)


def unique_attributes(query: JoinQuery) -> frozenset[str]:
    """Attributes appearing in exactly one relation."""
    occ = query.occurrences()
    return frozenset(a for a, es in occ.items() if len(es) == 1)


def edge_join_attributes(query: JoinQuery, edge: str) -> frozenset[str]:
    """The join attributes of one relation."""
    return query.edges[edge] & join_attributes(query)


def edge_unique_attributes(query: JoinQuery, edge: str) -> frozenset[str]:
    """The unique attributes of one relation."""
    return query.edges[edge] - join_attributes(query)


def is_island(query: JoinQuery, edge: str) -> bool:
    """A relation with no join attribute (its attrs may even be empty)."""
    return not edge_join_attributes(query, edge)


def is_bud(query: JoinQuery, edge: str) -> bool:
    """Exactly one join attribute and no unique attribute."""
    return (len(edge_join_attributes(query, edge)) == 1
            and not edge_unique_attributes(query, edge))


def is_leaf(query: JoinQuery, edge: str) -> bool:
    """At least one unique attribute and exactly one join attribute."""
    return (len(edge_join_attributes(query, edge)) == 1
            and bool(edge_unique_attributes(query, edge)))


@dataclass(frozen=True)
class LeafInfo:
    """A leaf relation together with the pieces Algorithm 2 needs."""

    edge: str
    unique_attrs: frozenset[str]
    join_attr: str
    neighbors: frozenset[str]


def leaf_info(query: JoinQuery, edge: str) -> LeafInfo:
    """The unique attributes, join attribute and neighbors Γ of a leaf."""
    joins = edge_join_attributes(query, edge)
    if len(joins) != 1:
        raise ValueError(f"{edge} is not a leaf (join attrs: {sorted(joins)})")
    (v,) = joins
    neighbors = frozenset(e for e in query.edges
                          if e != edge and v in query.edges[e])
    return LeafInfo(edge=edge,
                    unique_attrs=edge_unique_attributes(query, edge),
                    join_attr=v, neighbors=neighbors)


def find_islands(query: JoinQuery) -> list[str]:
    """All islands, sorted by name."""
    return [e for e in query.edge_names if is_island(query, e)]


def find_buds(query: JoinQuery) -> list[str]:
    """All buds, sorted by name."""
    return [e for e in query.edge_names if is_bud(query, e)]


def find_leaves(query: JoinQuery) -> list[str]:
    """All leaves, sorted by name."""
    return [e for e in query.edge_names if is_leaf(query, e)]


def is_petal_of(query: JoinQuery, edge: str, core: str) -> bool:
    """Whether ``edge`` can serve as a petal of ``core``.

    A petal is a leaf attached to the core through its one join
    attribute.  Appendix A.2 explicitly allows several petals sharing
    the same core attribute ("two or more petals in X joining with e0
    on the same join attribute"), so sibling petals on that attribute
    are permitted neighbors; anything else disqualifies the leaf.
    """
    if edge == core or not is_leaf(query, edge):
        return False
    info = leaf_info(query, edge)
    if core not in info.neighbors:
        return False
    if info.join_attr not in query.edges[core]:
        return False
    for other in info.neighbors - {core}:
        if not is_leaf(query, other):
            return False
        if leaf_info(query, other).join_attr != info.join_attr:
            return False
    return True


@dataclass(frozen=True)
class Star:
    """A star (Section 4.2, Figure 5): a core and a set of petals.

    ``external_attrs`` are the core's join attributes connecting it to
    relations outside the star; validity requires at most one.
    """

    core: str
    petals: frozenset[str]
    external_attrs: frozenset[str]

    @property
    def edges(self) -> frozenset[str]:
        return self.petals | {self.core}


def find_stars(query: JoinQuery, *, all_petal_subsets: bool = False
               ) -> list[Star]:
    """Enumerate the stars of a query.

    A core candidate is any relation with no unique attributes.  Its
    petal candidates are the leaves that intersect only the core.  A
    valid star takes a nonempty subset ``P`` of the petal candidates
    such that the core's attributes shared with relations outside
    ``{core} ∪ P`` number at most one ("the core connects with the rest
    of Q via exactly one join attribute"; zero is allowed when the star
    exhausts its component, e.g. a standalone star query).

    With ``all_petal_subsets=False`` (the default) only maximal stars —
    all petal candidates included — are returned when valid, falling
    back to the all-but-one subsets that Section 4.2's standalone-star
    discussion uses.  With ``all_petal_subsets=True`` every valid petal
    subset is enumerated (used to explore every ``GenS`` branch).
    """
    stars: list[Star] = []
    joins = join_attributes(query)
    for core in query.edge_names:
        core_attrs = query.edges[core]
        if not core_attrs or core_attrs - joins:
            continue  # has a unique attribute (or is attribute-less)
        petal_candidates = [e for e in query.edge_names
                            if is_petal_of(query, e, core)]
        if not petal_candidates:
            continue
        subsets = (_nonempty_subsets(petal_candidates) if all_petal_subsets
                   else _default_subsets(petal_candidates))
        for petals in subsets:
            star_edges = set(petals) | {core}
            outside = [e for e in query.edge_names if e not in star_edges]
            external = frozenset(
                a for a in core_attrs
                if any(a in query.edges[e] for e in outside))
            if len(external) <= 1:
                stars.append(Star(core=core, petals=frozenset(petals),
                                  external_attrs=external))
    return stars


def _nonempty_subsets(items: list[str]) -> list[tuple[str, ...]]:
    out: list[tuple[str, ...]] = []
    n = len(items)
    for mask in range(1, 1 << n):
        out.append(tuple(items[i] for i in range(n) if mask >> i & 1))
    return out


def _default_subsets(items: list[str]) -> list[tuple[str, ...]]:
    """The full petal set, plus each all-but-one subset (if ≥ 2 petals)."""
    subsets = [tuple(items)]
    if len(items) >= 2:
        for skip in items:
            subsets.append(tuple(p for p in items if p != skip))
    return subsets


def has_island_bud_or_leaf(query: JoinQuery) -> bool:
    """Lemma 1 guarantee: nonempty acyclic queries always satisfy this."""
    return bool(find_islands(query) or find_buds(query) or find_leaves(query))
