"""The full reducer: removing dangling tuples (Yannakakis, phase one).

The paper's optimality statements hold on *fully reduced* instances —
every tuple participates in at least one join result.  For acyclic
queries a two-pass semijoin program achieves this: eliminate relations
ear by ear (Lemma 1 guarantees a relation with at most one join
attribute always exists), semijoin each ear's parent by the ear on the
way up, then semijoin each ear by its parent on the way down.

This module implements the reducer over plain in-memory tables (lists
of tuples); :mod:`repro.core.reducer_em` wraps it for on-disk relations
with I/O accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.query.classify import edge_join_attributes
from repro.query.hypergraph import JoinQuery

Table = list[tuple]
Schemas = Mapping[str, Sequence[str]]


@dataclass(frozen=True)
class EliminationStep:
    """One ear removal: ``edge`` eliminated toward ``parent``.

    ``parent`` is ``None`` for islands (nothing to semijoin);
    ``shared_attr`` is the single join attribute connecting them.
    """

    edge: str
    parent: str | None
    shared_attr: str | None


def elimination_order(query: JoinQuery) -> list[EliminationStep]:
    """Ear-elimination order for a Berge-acyclic query.

    Repeatedly removes a relation with at most one join attribute
    (island, bud or leaf).  Raises if the query is cyclic, since then
    some residue has no such relation.
    """
    q = query
    steps: list[EliminationStep] = []
    while len(q.edges) > 0:
        pick = None
        for e in q.edge_names:
            joins = edge_join_attributes(q, e)
            if len(joins) <= 1:
                pick = (e, joins)
                break
        if pick is None:
            raise ValueError("no ear found — query is not Berge-acyclic")
        e, joins = pick
        if joins:
            (v,) = joins
            parent = next(e2 for e2 in q.edge_names
                          if e2 != e and v in q.edges[e2])
            steps.append(EliminationStep(edge=e, parent=parent,
                                         shared_attr=v))
        else:
            steps.append(EliminationStep(edge=e, parent=None,
                                         shared_attr=None))
        q = q.drop_edges([e])
    return steps


def semijoin(left: Table, left_schema: Sequence[str], right: Table,
             right_schema: Sequence[str], attr: str) -> Table:
    """``left ⋉ right`` on the single shared attribute ``attr``."""
    ri = list(right_schema).index(attr)
    li = list(left_schema).index(attr)
    values = {t[ri] for t in right}
    return [t for t in left if t[li] in values]


def full_reduce(query: JoinQuery, data: Mapping[str, Table],
                schemas: Schemas) -> dict[str, Table]:
    """Return a fully reduced copy of ``data`` (two semijoin passes)."""
    tables = {e: list(data[e]) for e in query.edges}
    steps = elimination_order(query)
    # Upward pass: parents filtered by already-processed children.
    for step in steps:
        if step.parent is None:
            continue
        tables[step.parent] = semijoin(
            tables[step.parent], schemas[step.parent],
            tables[step.edge], schemas[step.edge], step.shared_attr)
    # Downward pass: children filtered by (now consistent) parents.
    for step in reversed(steps):
        if step.parent is None:
            continue
        tables[step.edge] = semijoin(
            tables[step.edge], schemas[step.edge],
            tables[step.parent], schemas[step.parent], step.shared_attr)
    return tables


def is_fully_reduced(query: JoinQuery, data: Mapping[str, Table],
                     schemas: Schemas) -> bool:
    """True when the full reducer would remove nothing.

    If any relation is empty, full reduction empties all relations in
    its connected component; an instance with an empty relation and a
    nonempty one in the same component is therefore not reduced.
    """
    reduced = full_reduce(query, data, schemas)
    return all(len(reduced[e]) == len(data[e]) for e in query.edges)
