"""``GenS(Q)``: the nondeterministic subset-generation process (Algorithm 3).

``GenS`` produces, per nondeterministic branch, a collection ``S`` of
subsets of the relations; Theorem 3 bounds Algorithm 2's I/O cost by
``min_{S ∈ GenS(Q)} max_{S ∈ S} Ψ(R, S)``.  The recursion follows the
structure of the query:

* empty query → ``{∅}``;
* a bud is dropped;
* if a star ``X`` (core ``e0``, petals ``X − {e0}``) exists, one is
  picked nondeterministically and (per equation (13) of the paper's
  Appendix A.2)::

      GenS(Q) = 2^X
              ∪ 2^{X−{e0}}              × GenS(Q − X)
              ∪ (2^{X−{e0}} − {X−{e0}}) × GenS(Q − X + {e0})

  — i.e. all petals may appear together in one subset only when the
  core is *not* part of the recursive side;
* otherwise an island or leaf ``e`` is picked nondeterministically and
  ``GenS(Q) = GenS(Q−e) ∪ {S ∪ {e}}``.

:func:`gens_all` enumerates every branch (the paper's round-robin
simulation explores the same set); :func:`gens_best` then minimizes the
bound over branches.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.query.classify import find_buds, find_islands, find_leaves, find_stars
from repro.query.hypergraph import JoinQuery

SubsetCollection = frozenset[frozenset[str]]


def _powerset(items: Iterable[str]) -> list[frozenset[str]]:
    items = sorted(items)
    out = []
    for mask in range(1 << len(items)):
        out.append(frozenset(items[i] for i in range(len(items))
                             if mask >> i & 1))
    return out


def _cross(collections: Iterable[frozenset[str]],
           subsets: Iterable[frozenset[str]]) -> set[frozenset[str]]:
    """``{S ∪ f | S ∈ collections, f ∈ subsets}`` (the paper's ×)."""
    return {s | f for s in collections for f in subsets}


def gens_all(query: JoinQuery) -> set[SubsetCollection]:
    """Every collection ``S`` generatable by some branch of Algorithm 3."""
    memo: dict[frozenset, set[SubsetCollection]] = {}
    return _gens_all(query, memo)


def _gens_all(query: JoinQuery,
              memo: dict[frozenset, set[SubsetCollection]]
              ) -> set[SubsetCollection]:
    key = query.structure_key()
    if key in memo:
        return memo[key]

    if not query.edges:
        result = {frozenset({frozenset()})}
        memo[key] = result
        return result

    buds = find_buds(query)
    if buds:
        result = _gens_all(query.drop_edges([buds[0]]), memo)
        memo[key] = result
        return result

    result: set[SubsetCollection] = set()
    stars = find_stars(query, all_petal_subsets=True)
    if stars:
        for star in stars:
            petal_subsets = _powerset(star.petals)
            proper_petal_subsets = [f for f in petal_subsets
                                    if f != star.petals]
            star_subsets = set(_powerset(star.edges))
            branches_no_core = _gens_all(query.drop_edges(star.edges), memo)
            branches_with_core = _gens_all(query.drop_edges(star.petals), memo)
            for s2 in branches_no_core:
                for s1 in branches_with_core:
                    combined = set(star_subsets)
                    combined |= _cross(s2, petal_subsets)
                    combined |= _cross(s1, proper_petal_subsets)
                    result.add(frozenset(combined))
    else:
        for e in find_islands(query) + find_leaves(query):
            for sub in _gens_all(query.drop_edges([e]), memo):
                combined = set(sub) | {s | {e} for s in sub}
                result.add(frozenset(combined))
        if not result:
            raise ValueError(
                "query has no bud, star, island or leaf — it is not "
                "Berge-acyclic (Lemma 1)")
    memo[key] = result
    return result


def gens_one(query: JoinQuery,
             star_chooser: Callable[[list], int] | None = None,
             leaf_chooser: Callable[[list[str]], int] | None = None
             ) -> SubsetCollection:
    """One branch of ``GenS``, with injectable choice functions.

    ``star_chooser`` picks among the available stars,
    ``leaf_chooser`` among islands+leaves; both default to index 0.
    """
    pick_star = star_chooser or (lambda options: 0)
    pick_leaf = leaf_chooser or (lambda options: 0)

    if not query.edges:
        return frozenset({frozenset()})

    buds = find_buds(query)
    if buds:
        return gens_one(query.drop_edges([buds[0]]), star_chooser,
                        leaf_chooser)

    stars = find_stars(query, all_petal_subsets=True)
    if stars:
        star = stars[pick_star(stars)]
        petal_subsets = _powerset(star.petals)
        proper = [f for f in petal_subsets if f != star.petals]
        s2 = gens_one(query.drop_edges(star.edges), star_chooser, leaf_chooser)
        s1 = gens_one(query.drop_edges(star.petals), star_chooser, leaf_chooser)
        combined = set(_powerset(star.edges))
        combined |= _cross(s2, petal_subsets)
        combined |= _cross(s1, proper)
        return frozenset(combined)

    options = find_islands(query) + find_leaves(query)
    if not options:
        raise ValueError("query has no bud, star, island or leaf")
    e = options[pick_leaf(options)]
    sub = gens_one(query.drop_edges([e]), star_chooser, leaf_chooser)
    return frozenset(set(sub) | {s | {e} for s in sub})


def remove_safely_dominated(collection: SubsetCollection,
                            query: JoinQuery) -> SubsetCollection:
    """Drop subsets provably dominated under the model's assumptions.

    A subset ``S'`` is *safely dominated* by ``S ⊇ S'`` when every edge
    of ``S − S'`` is disconnected (within ``S``) from ``S'`` and from
    the other added edges: then ``Ψ(R,S) = Ψ(R,S') · ∏ N(e)/M`` and the
    standing assumption ``N(e) ≥ M`` (Section 1.1) gives
    ``Ψ(R,S') ≤ Ψ(R,S)`` on every instance.  The empty subset is always
    dominated (cost 0).  This is a *presentation* helper: the cost bound
    itself never needs filtering because dominated subsets cannot
    achieve the max.
    """
    kept: set[frozenset[str]] = set()
    as_list = sorted(collection, key=len, reverse=True)
    for s_prime in as_list:
        if not s_prime:
            continue
        dominated = False
        for s in collection:
            if not s_prime < s:
                continue
            added = s - s_prime
            comps = query.connected_components(s)
            by_comp = {e: c for c in comps for e in c}
            if all(len(by_comp[e]) == 1 for e in added):
                dominated = True
                break
        if not dominated:
            kept.add(s_prime)
    return frozenset(kept)
