"""Line-join theory (Section 6).

A line join ``L_n`` has attributes ``v1..v_{n+1}`` and edges
``e_i = {v_i, v_{i+1}}``.  This module implements the paper's
characterization machinery:

* the optimal 0/1 edge cover of a line join and its decomposition into
  *alternating intervals* (Section 6.1);
* the *balanced* condition for odd ``n`` (Section 6.2):
  ``N_i N_{i+2} ⋯ N_j ≥ N_{i+1} N_{i+3} ⋯ N_{j-1}`` for every window
  ``[i, j]`` of even length ``j - i``;
* the balanced-split condition for even ``n`` (Theorem 6);
* the *independent subsets* of edges (no two consecutive) over which
  Corollary 2 takes its max;
* dispatch hints for the unbalanced special cases of Section 6.3.

Sizes are passed as a 1-indexed-in-spirit Python list ``sizes[0..n-1]``
for ``N_1..N_n``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence


def line_cover(sizes: Sequence[int]) -> tuple[int, ...]:
    """The optimal 0/1 edge cover of a line join, by dynamic programming.

    Constraints: ``x_1 = x_n = 1`` (end attributes are unique) and
    ``x_i + x_{i+1} ≥ 1`` for each internal attribute.  Minimizes
    ``Σ x_i ln N_i``.  Ties are broken toward lexicographically largest
    cover, which is immaterial to the bound.
    """
    n = len(sizes)
    if n == 0:
        return ()
    if n == 1:
        return (1,)
    logs = [math.log(max(s, 2)) for s in sizes]
    # dp[i][x] = min cost of covering prefix deciding x_i = x.
    inf = float("inf")
    dp = [[inf, inf] for _ in range(n)]
    choice: list[list[int]] = [[-1, -1] for _ in range(n)]
    dp[0][1] = logs[0]  # x_1 = 1 forced
    for i in range(1, n):
        for x in (0, 1):
            for px in (0, 1):
                if px + x < 1:
                    continue  # attribute v_{i+1} uncovered
                cost = dp[i - 1][px] + (logs[i] if x else 0.0)
                if cost < dp[i][x]:
                    dp[i][x] = cost
                    choice[i][x] = px
    # x_n = 1 forced
    xs = [0] * n
    xs[-1] = 1
    for i in range(n - 1, 0, -1):
        xs[i - 1] = choice[i][xs[i]]
    return tuple(xs)


def alternating_intervals(cover: Sequence[int]) -> list[tuple[int, int]]:
    """Decompose a 0/1 line cover into maximal alternating intervals.

    An alternating interval is a maximal run ``1, 0, 1, 0, …, 0, 1``
    (or a single ``1``); Section 6.1 shows the optimal cover is a
    concatenation of such intervals.  Returns 0-based ``(start, stop)``
    index pairs over the cover positions, inclusive of both ends.
    """
    intervals: list[tuple[int, int]] = []
    i = 0
    n = len(cover)
    while i < n:
        if cover[i] != 1:
            raise ValueError(f"cover {tuple(cover)} does not decompose into "
                             f"alternating intervals (position {i} is 0)")
        j = i
        while j + 2 < n and cover[j + 1] == 0 and cover[j + 2] == 1:
            j += 2
        intervals.append((i, j))
        i = j + 1
    return intervals


def is_alternating(cover: Sequence[int]) -> bool:
    """Whether the whole cover is a single alternating interval."""
    try:
        return len(alternating_intervals(cover)) == 1
    except ValueError:
        return False


def is_balanced(sizes: Sequence[int]) -> bool:
    """The balanced condition for line joins (Section 6.2, odd ``n``).

    Checks ``N_i N_{i+2} ⋯ N_j ≥ N_{i+1} ⋯ N_{j-1}`` for every
    ``1 ≤ i < j ≤ n`` with ``j - i`` even.  ``L_3`` is always balanced
    once dangling tuples are removed; ``L_5`` is balanced iff
    ``N_1 N_3 N_5 ≥ N_2 N_4``.
    """
    n = len(sizes)
    for i in range(n):           # 0-based i  (paper's i-1)
        for j in range(i + 2, n, 2):
            outer = math.prod(sizes[i:j + 1:2])
            inner = math.prod(sizes[i + 1:j:2])
            if outer < inner:
                return False
    return True


def balanced_violations(sizes: Sequence[int]) -> list[tuple[int, int]]:
    """All windows (1-based, inclusive) violating the balanced condition."""
    n = len(sizes)
    out = []
    for i in range(n):
        for j in range(i + 2, n, 2):
            if math.prod(sizes[i:j + 1:2]) < math.prod(sizes[i + 1:j:2]):
                out.append((i + 1, j + 1))
    return out


def balanced_split(sizes: Sequence[int]) -> int | None:
    """For even ``n``: an odd ``k`` splitting into two balanced subjoins.

    Theorem 6: Algorithm 2 is optimal on an even line join when some
    odd ``k`` makes both ``e_1 ⋯ e_k`` and ``e_{k+1} ⋯ e_n`` balanced.
    Returns the 1-based ``k`` or ``None`` when no such split exists.
    """
    n = len(sizes)
    if n % 2 != 0:
        raise ValueError(f"balanced_split applies to even n, got n={n}")
    for k in range(1, n, 2):
        if is_balanced(sizes[:k]) and is_balanced(sizes[k:]):
            return k
    return None


def independent_subsets(n: int) -> Iterator[frozenset[str]]:
    """All subsets of ``{e1..en}`` with no two consecutive edges.

    These are the ``S`` over which Corollary 2's max ranges: consecutive
    edges share an attribute, so an independent subset's subjoin is a
    full cross product ``∏_{e∈S} N(e)``.
    """
    for mask in range(1 << n):
        if mask & (mask << 1):
            continue
        yield frozenset(f"e{i + 1}" for i in range(n) if mask >> i & 1)


def line_bound(sizes: Sequence[int], M: int, B: int, *,
               allow_adjacent_pair: int | None = None) -> float:
    """``max_S ∏_{e∈S} N(e) / (M^{|S|-1} B)`` over independent subsets.

    This is the Corollary 2 cost (odd balanced lines).  For Theorem 6's
    even case pass ``allow_adjacent_pair=k`` (1-based) to additionally
    allow ``e_k`` and ``e_{k+1}`` to be chosen together.
    """
    n = len(sizes)
    best = 0.0
    for subset in independent_subsets(n):
        best = max(best, _cross_cost([int(e[1:]) for e in subset],
                                     sizes, M, B))
    if allow_adjacent_pair is not None:
        k = allow_adjacent_pair
        left = [i for i in range(1, k)]        # candidates before the pair
        right = [i for i in range(k + 2, n + 1)]
        for lmask in _independent_masks(left, forbid_adjacent_to=k):
            for rmask in _independent_masks(right,
                                            forbid_adjacent_to=k + 1):
                chosen = sorted(lmask + [k, k + 1] + rmask)
                best = max(best, _cross_cost(chosen, sizes, M, B))
    return best


def _independent_masks(candidates: list[int], *,
                       forbid_adjacent_to: int) -> list[list[int]]:
    out: list[list[int]] = []
    for r in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, r):
            ok = all(b - a >= 2 for a, b in zip(combo, combo[1:]))
            if ok and all(abs(c - forbid_adjacent_to) >= 2 for c in combo):
                out.append(list(combo))
    return out


def _cross_cost(indices: list[int], sizes: Sequence[int], M: int,
                B: int) -> float:
    if not indices:
        return 0.0
    prod = math.prod(sizes[i - 1] for i in indices)
    return prod / (M ** (len(indices) - 1) * B)


@dataclass(frozen=True)
class LineClassification:
    """How Section 6 dispatches a line join of ``n`` relations."""

    n: int
    cover: tuple[int, ...]
    balanced: bool
    split_k: int | None
    regime: str  # "balanced-odd" | "balanced-even" | "unbalanced-5" | ...


def classify_line(sizes: Sequence[int]) -> LineClassification:
    """Decide which of the paper's line-join regimes applies.

    * odd ``n`` and balanced → Theorem 5 (Algorithm 2 optimal);
    * even ``n`` with a balanced split → Theorem 6 (Algorithm 2 optimal);
    * ``n = 5`` unbalanced → Algorithm 4;
    * ``n = 6`` without split → nested loop over ``R_6`` + Algorithm 4;
    * ``n = 7`` unbalanced → Algorithm 5 (or the ``(1,1,0,1,0,1,1)``
      reduction);
    * ``n = 8`` → reduces to smaller joins;
    * ``n ≥ 9`` unbalanced → open (Algorithm 2 still runs, optimality
      unknown).
    """
    n = len(sizes)
    cover = line_cover(sizes)
    if n % 2 == 1:
        balanced = is_balanced(sizes)
        regime = "balanced-odd" if balanced else f"unbalanced-{n}"
        if not balanced and n >= 9:
            regime = "unbalanced-open"
        return LineClassification(n=n, cover=cover, balanced=balanced,
                                  split_k=None, regime=regime)
    k = balanced_split(sizes)
    if k is not None:
        return LineClassification(n=n, cover=cover, balanced=True,
                                  split_k=k, regime="balanced-even")
    regime = f"unbalanced-{n}" if n <= 8 else "unbalanced-open"
    return LineClassification(n=n, cover=cover, balanced=False,
                              split_k=None, regime=regime)
