"""Shape detection: recognizing the paper's query families.

The planner (:mod:`repro.core.planner`) dispatches on the shape of the
query hypergraph: two relations, line join (Section 6), star join
(Section 5), lollipop (Section 7.2), dumbbell (Section 7.3), or general
acyclic.  Detection is purely structural, so queries built with any
edge/attribute naming are recognized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.classify import (edge_unique_attributes, find_stars,
                                  is_leaf, is_petal_of, join_attributes,
                                  leaf_info)
from repro.query.hypergraph import JoinQuery, is_berge_acyclic


@dataclass(frozen=True)
class ChainInfo:
    """A line join: edges in chain order and their shared attributes.

    ``join_attrs[i]`` is the attribute shared by ``edges[i]`` and
    ``edges[i+1]``.
    """

    edges: tuple[str, ...]
    join_attrs: tuple[str, ...]


def detect_line(query: JoinQuery) -> ChainInfo | None:
    """Recognize a line join; returns the chain order or ``None``.

    A line join has binary edges forming a path: every attribute occurs
    in at most two edges, exactly two edges hold an end (unique)
    attribute, and the adjacency is a single path.
    """
    names = query.edge_names
    if len(names) < 2:
        return None
    if any(len(query.edges[e]) != 2 for e in names):
        return None
    occ = query.occurrences()
    if any(len(es) > 2 for es in occ.values()):
        return None
    ends = [e for e in names if len(edge_unique_attributes(query, e)) == 1]
    if len(ends) != 2:
        return None
    # Walk the path from the lexicographically smaller end.
    start = min(ends)
    order = [start]
    attrs: list[str] = []
    current = start
    prev_attr: str | None = None
    while True:
        nexts = [(a, e) for a in query.edges[current] if a != prev_attr
                 for e in occ[a] if e != current]
        if not nexts:
            break
        if len(nexts) != 1:
            return None
        attr, nxt = nexts[0]
        order.append(nxt)
        attrs.append(attr)
        prev_attr, current = attr, nxt
    if len(order) != len(names):
        return None
    return ChainInfo(edges=tuple(order), join_attrs=tuple(attrs))


@dataclass(frozen=True)
class StarInfo:
    """A standalone star join: core plus all petals."""

    core: str
    petals: tuple[str, ...]


def detect_star(query: JoinQuery) -> StarInfo | None:
    """Recognize a standalone star: one core, every other edge a petal."""
    names = query.edge_names
    if len(names) < 2:
        return None
    joins = join_attributes(query)
    cores = [e for e in names if query.edges[e] and
             not (query.edges[e] - joins)]
    if len(cores) != 1:
        return None
    core = cores[0]
    petals = []
    for e in names:
        if e == core:
            continue
        if not is_petal_of(query, e, core):
            return None
        petals.append(e)
    # Every core attribute must be covered by some petal.
    covered = set()
    for p in petals:
        covered |= query.edges[p] & query.edges[core]
    if covered != set(query.edges[core]):
        return None
    return StarInfo(core=core, petals=tuple(petals))


@dataclass(frozen=True)
class LollipopInfo:
    """A lollipop (Figure 8): star core, petals, stick, stick tip."""

    core: str
    petals: tuple[str, ...]
    stick: str        # the paper's e_n: {v_n, v_{n+1}}
    tip: str          # the paper's e_{n+1}: {v_{n+1}, u}


def detect_lollipop(query: JoinQuery) -> LollipopInfo | None:
    """Recognize a lollipop: a star with exactly one extended petal.

    Both the core and the stick have no unique attributes (the stick's
    two attributes are shared with the core and the tip), so we look
    for exactly two such edges and try each as the stick.
    """
    names = query.edge_names
    if len(names) < 4:
        return None
    joins = join_attributes(query)
    no_unique = [e for e in names if query.edges[e] and
                 not (query.edges[e] - joins)]
    if len(no_unique) != 2:
        return None
    for stick, core in (no_unique, no_unique[::-1]):
        if len(query.edges[stick]) != 2:
            continue
        shared = query.edges[stick] & query.edges[core]
        if len(shared) != 1:
            continue
        outer_attr = next(iter(query.edges[stick] - shared))
        tips = [e for e in names if e not in (core, stick)
                and outer_attr in query.edges[e]]
        if len(tips) != 1 or not is_leaf(query, tips[0]):
            continue
        tip = tips[0]
        petals = [e for e in names if e not in (core, stick, tip)]
        if not petals:
            continue
        ok = all(is_petal_of(query, p, core) for p in petals)
        # Every core attribute is covered by a petal or the stick.
        covered: set[str] = set(shared)
        for p in petals:
            covered |= query.edges[p] & query.edges[core]
        if ok and covered == set(query.edges[core]):
            return LollipopInfo(core=core, petals=tuple(sorted(petals)),
                                stick=stick, tip=tip)
    return None


@dataclass(frozen=True)
class DumbbellInfo:
    """A dumbbell (Figure 9): two star cores sharing the bar petal."""

    core1: str
    petals1: tuple[str, ...]
    bar: str
    core2: str
    petals2: tuple[str, ...]


def detect_dumbbell(query: JoinQuery) -> DumbbellInfo | None:
    """Recognize a dumbbell: two cores joined through one bar relation."""
    names = query.edge_names
    if len(names) < 5:
        return None
    joins = join_attributes(query)
    no_unique = [e for e in names if query.edges[e] and
                 not (query.edges[e] - joins)]
    # Cores and the bar all lack unique attributes.
    if len(no_unique) != 3:
        return None
    for bar in no_unique:
        if len(query.edges[bar]) != 2:
            continue
        cores = [e for e in no_unique if e != bar]
        c1, c2 = sorted(cores)
        if (len(query.edges[bar] & query.edges[c1]) != 1
                or len(query.edges[bar] & query.edges[c2]) != 1):
            continue
        if query.edges[c1] & query.edges[c2]:
            continue
        petals1, petals2 = [], []
        ok = True
        for e in names:
            if e in (c1, c2, bar):
                continue
            if is_petal_of(query, e, c1):
                petals1.append(e)
            elif is_petal_of(query, e, c2):
                petals2.append(e)
            else:
                ok = False
                break
        if ok and petals1 and petals2:
            return DumbbellInfo(core1=c1, petals1=tuple(sorted(petals1)),
                                bar=bar, core2=c2,
                                petals2=tuple(sorted(petals2)))
    return None


def classify_shape(query: JoinQuery) -> str:
    """The planner's shape label for a query."""
    if not is_berge_acyclic(query):
        return "cyclic"
    n = len(query.edges)
    if n == 0:
        return "empty"
    if n == 1:
        return "single"
    if n == 2:
        return "two-relation"
    if detect_line(query) is not None:
        return "line"
    if detect_star(query) is not None:
        return "star"
    if detect_lollipop(query) is not None:
        return "lollipop"
    if detect_dumbbell(query) is not None:
        return "dumbbell"
    return "general-acyclic"
