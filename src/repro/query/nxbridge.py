"""networkx interop: incidence graphs, join forests, cross-checks.

The query hypergraph's *incidence graph* (attributes ∪ edges as nodes,
membership as arcs) is the object Berge-acyclicity is defined on
(Section 1.3).  This module materializes it as a
:class:`networkx.Graph` so users can visualize queries, compute graph
metrics, or feed them to other tooling — and so tests can cross-check
our union-find acyclicity test against ``networkx.is_forest``.

Also derives the *join forest* (edges as nodes, one arc per ear
attachment) from the elimination order — the tree Yannakakis-style
processing walks.
"""

from __future__ import annotations

import networkx as nx

from repro.query.hypergraph import JoinQuery
from repro.query.reduce import elimination_order


def incidence_graph(query: JoinQuery) -> "nx.Graph":
    """The bipartite attribute–edge incidence graph.

    Nodes carry a ``kind`` attribute (``"relation"`` or
    ``"attribute"``); names are prefixed (``"E:"``/``"A:"``) so a
    relation and an attribute may share a name without colliding.
    """
    g = nx.Graph()
    for e in query.edge_names:
        g.add_node(f"E:{e}", kind="relation", name=e)
    for a in sorted(query.attributes):
        g.add_node(f"A:{a}", kind="attribute", name=a)
    for e in query.edge_names:
        for a in sorted(query.edges[e]):
            g.add_edge(f"E:{e}", f"A:{a}")
    return g


def is_berge_acyclic_nx(query: JoinQuery) -> bool:
    """Berge-acyclicity via networkx (reference implementation).

    A graph is a forest iff every connected component has
    ``#edges == #nodes - 1``; :func:`networkx.is_forest` checks exactly
    that.  Used in tests to cross-validate
    :func:`repro.query.hypergraph.is_berge_acyclic`.
    """
    g = incidence_graph(query)
    if g.number_of_nodes() == 0:
        return True
    return nx.is_forest(g)


def join_forest(query: JoinQuery) -> "nx.DiGraph":
    """The ear-attachment forest over relations.

    One node per relation; an arc ``child → parent`` for every
    elimination step with a parent, labelled by the shared attribute.
    Roots (last relation of each component, and islands) have no
    outgoing arc.
    """
    g = nx.DiGraph()
    for e in query.edge_names:
        g.add_node(e)
    for step in elimination_order(query):
        if step.parent is not None:
            g.add_edge(step.edge, step.parent, attribute=step.shared_attr)
    return g


def hypergraph_stats(query: JoinQuery) -> dict[str, int | float]:
    """Summary metrics of the query's incidence structure."""
    g = incidence_graph(query)
    degrees = [d for _, d in g.degree()]
    return {
        "relations": len(query.edges),
        "attributes": len(query.attributes),
        "incidences": g.number_of_edges(),
        "components": nx.number_connected_components(g)
        if g.number_of_nodes() else 0,
        "max_degree": max(degrees, default=0),
        "diameter_upper": max(
            (max(nx.eccentricity(g.subgraph(c)).values())
             for c in nx.connected_components(g)), default=0)
        if g.number_of_nodes() else 0,
    }
