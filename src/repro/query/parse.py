"""A compact text syntax for join queries.

Natural joins are written as a list of relation atoms::

    parse_query("e1(v1, v2), e2(v2, v3), e3(v3, v4)")
    parse_query("R(a,b) ⋈ S(b,c) ⋈ T(c,d)")
    parse_query("fact(c,p,s)[10000], cust(c,n)[500]")

Atoms are separated by ``,`` or ``⋈`` (or the ASCII ``|x|``); an
optional ``[size]`` suffix attaches the ``N(e)`` bound.  Attribute
repetition across atoms is what makes them join — exactly the
hypergraph model of Section 1.1.  :func:`format_query` renders a query
back to this syntax (round-trip tested).
"""

from __future__ import annotations

import re

from repro.query.hypergraph import JoinQuery

_ATOM = re.compile(
    r"""\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*
        \(\s*(?P<attrs>[^()]*?)\s*\)\s*
        (?:\[\s*(?P<size>\d+)\s*\])?\s*""",
    re.VERBOSE)

_SEPARATOR = re.compile(r"\s*(?:,|⋈|\|x\|)\s*")


class QueryParseError(ValueError):
    """The query text does not match the expected syntax."""


def parse_query(text: str) -> JoinQuery:
    """Parse the relation-atom syntax into a :class:`JoinQuery`.

    Sizes are attached when *every* atom carries one; a partial
    annotation is rejected (it is almost certainly a mistake).
    """
    if not text or not text.strip():
        raise QueryParseError("empty query text")
    edges: dict[str, frozenset[str]] = {}
    sizes: dict[str, int] = {}
    pos = 0
    n_atoms = 0
    while pos < len(text):
        m = _ATOM.match(text, pos)
        if not m:
            raise QueryParseError(
                f"expected a relation atom like 'R(a, b)' at position "
                f"{pos}: {text[pos:pos + 30]!r}")
        name = m.group("name")
        if name in edges:
            raise QueryParseError(f"duplicate relation name {name!r}")
        attrs = [a.strip() for a in m.group("attrs").split(",")
                 if a.strip()]
        if not attrs:
            raise QueryParseError(f"relation {name!r} lists no attributes")
        if len(set(attrs)) != len(attrs):
            raise QueryParseError(
                f"relation {name!r} repeats an attribute: {attrs}")
        for a in attrs:
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", a):
                raise QueryParseError(
                    f"bad attribute name {a!r} in relation {name!r}")
        edges[name] = frozenset(attrs)
        if m.group("size") is not None:
            sizes[name] = int(m.group("size"))
        n_atoms += 1
        pos = m.end()
        if pos < len(text):
            sep = _SEPARATOR.match(text, pos)
            if not sep or sep.end() == pos:
                raise QueryParseError(
                    f"expected ',' or '⋈' between atoms at position "
                    f"{pos}: {text[pos:pos + 20]!r}")
            pos = sep.end()
            if pos >= len(text):
                raise QueryParseError("query text ends with a separator")
    if sizes and len(sizes) != n_atoms:
        missing = sorted(set(edges) - set(sizes))
        raise QueryParseError(
            f"size annotations must cover every relation or none; "
            f"missing for {missing}")
    return JoinQuery(edges=edges, sizes=sizes or None)


def parse_schemas(text: str) -> dict[str, tuple[str, ...]]:
    """Parse the same syntax into ``{name: attribute tuple}`` layouts.

    Unlike :func:`parse_query` (which holds attribute *sets*), this
    preserves the written attribute order — the physical column layout
    an :class:`~repro.data.instance.Instance` needs.
    """
    layouts: dict[str, tuple[str, ...]] = {}
    pos = 0
    while pos < len(text):
        m = _ATOM.match(text, pos)
        if not m:
            raise QueryParseError(
                f"expected a relation atom at position {pos}")
        attrs = tuple(a.strip() for a in m.group("attrs").split(",")
                      if a.strip())
        layouts[m.group("name")] = attrs
        pos = m.end()
        if pos < len(text):
            sep = _SEPARATOR.match(text, pos)
            if not sep:
                raise QueryParseError(
                    f"expected ',' or '⋈' at position {pos}")
            pos = sep.end()
    return layouts


def parse_query_and_layouts(
        text: str) -> tuple[JoinQuery, dict[str, tuple[str, ...]]]:
    """One parse for callers needing both views of the same text.

    The CLI and the server both need the hypergraph (to plan) *and* the
    written attribute order (to lay out columns); parsing once keeps
    the two in lockstep by construction.
    """
    return parse_query(text), parse_schemas(text)


def format_query(query: JoinQuery) -> str:
    """Render a query back to the atom syntax (attributes sorted)."""
    parts = []
    for e in query.edge_names:
        attrs = ", ".join(sorted(query.edges[e]))
        suffix = ""
        if query.sizes is not None and e in query.sizes:
            suffix = f"[{query.sizes[e]}]"
        parts.append(f"{e}({attrs}){suffix}")
    return " ⋈ ".join(parts)
