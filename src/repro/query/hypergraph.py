"""Join queries as hypergraphs, and Berge-acyclicity.

A (natural) join query is a triple ``Q = (V, E, N)`` (Section 1.1): a
set of attributes ``V``, a set of hyperedges ``E ⊆ 2^V`` (one per
relation), and per-edge size bounds ``N``.  The paper works with
*Berge-acyclic* queries (Section 1.3): the bipartite incidence graph —
attributes on one side, edges on the other, adjacency = membership —
must be acyclic (a forest).  Berge-acyclicity implies in particular
that two relations share at most one attribute (two shared attributes
would close a 4-cycle in the incidence graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping


@dataclass(frozen=True)
class JoinQuery:
    """An immutable join query hypergraph with optional size bounds.

    ``edges`` maps the relation name to its attribute set.  ``sizes``
    maps the relation name to ``N(e)``; it may be omitted for purely
    structural computations (acyclicity, :func:`repro.query.gens.gens_all`).
    """

    edges: Mapping[str, frozenset[str]]
    sizes: Mapping[str, int] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges",
                           {e: frozenset(a) for e, a in self.edges.items()})
        if self.sizes is not None:
            unknown = set(self.sizes) - set(self.edges)
            if unknown:
                raise ValueError(f"sizes given for unknown edges {sorted(unknown)}")
            object.__setattr__(self, "sizes", dict(self.sizes))

    # -- basic structure -----------------------------------------------------

    @cached_property
    def attributes(self) -> frozenset[str]:
        """All attributes appearing in some edge."""
        out: set[str] = set()
        for attrs in self.edges.values():
            out |= attrs
        return frozenset(out)

    @property
    def edge_names(self) -> list[str]:
        """Edge names in deterministic (sorted) order."""
        return sorted(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def size(self, edge: str) -> int:
        """``N(e)`` for the given edge."""
        if self.sizes is None:
            raise ValueError("query has no size bounds attached")
        return self.sizes[edge]

    def with_sizes(self, sizes: Mapping[str, int]) -> "JoinQuery":
        """A copy with (new) size bounds."""
        return JoinQuery(edges=dict(self.edges), sizes=dict(sizes))

    # -- structural surgery (used by the recursions) ---------------------------

    def drop_edges(self, names: Iterable[str]) -> "JoinQuery":
        """Remove relations; attributes now in no relation vanish."""
        names = set(names)
        edges = {e: a for e, a in self.edges.items() if e not in names}
        sizes = (None if self.sizes is None
                 else {e: n for e, n in self.sizes.items() if e not in names})
        return JoinQuery(edges=edges, sizes=sizes)

    def drop_attributes(self, attrs: Iterable[str]) -> "JoinQuery":
        """Remove attributes from every edge (edges may become empty)."""
        attrs = set(attrs)
        edges = {e: a - attrs for e, a in self.edges.items()}
        return JoinQuery(edges=edges, sizes=self.sizes)

    def structure_key(self) -> frozenset[tuple[str, frozenset[str]]]:
        """A hashable canonical key for this query's structure.

        Used to memoize nondeterministic-branch enumeration: Algorithm 2
        and ``GenS`` both make choices that depend only on the structure.
        """
        return frozenset(self.edges.items())

    # -- connectivity ---------------------------------------------------------

    def occurrences(self) -> dict[str, list[str]]:
        """``{attribute: [edges containing it]}`` (edges sorted)."""
        occ: dict[str, list[str]] = {a: [] for a in self.attributes}
        for e in self.edge_names:
            for a in sorted(self.edges[e]):
                occ[a].append(e)
        return occ

    def connected_components(self, subset: Iterable[str] | None = None
                             ) -> list[frozenset[str]]:
        """Connected components of the edge set (or a subset of edges).

        Two edges are adjacent when they share an attribute.  Needed by
        the analysis: the subjoin over a disconnected ``S`` is the cross
        product of its components' subjoins (Section 1.4).
        """
        names = sorted(self.edges if subset is None else subset)
        parent = {e: e for e in names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: str, y: str) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[rx] = ry

        by_attr: dict[str, str] = {}
        for e in names:
            for a in self.edges[e]:
                if a in by_attr:
                    union(e, by_attr[a])
                else:
                    by_attr[a] = e
        comps: dict[str, set[str]] = {}
        for e in names:
            comps.setdefault(find(e), set()).add(e)
        return sorted((frozenset(c) for c in comps.values()),
                      key=lambda c: sorted(c))

    def is_connected(self) -> bool:
        """Whether the whole hypergraph is one component."""
        return len(self.connected_components()) <= 1


def is_berge_acyclic(query: JoinQuery) -> bool:
    """Berge-acyclicity test via the bipartite incidence graph.

    The incidence graph has a node per attribute and per edge, and an
    undirected arc for each membership.  The hypergraph is Berge-acyclic
    iff this graph is a forest, i.e. ``#arcs == #nodes - #components``.
    A union–find cycle check is equivalent: adding an arc between two
    already-connected nodes exposes a cycle.
    """
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for e in query.edge_names:
        parent.setdefault(("E", e), ("E", e))  # type: ignore[index]
    for a in sorted(query.attributes):
        parent.setdefault(("A", a), ("A", a))  # type: ignore[index]

    for e in query.edge_names:
        for a in sorted(query.edges[e]):
            ra, re = find(("A", a)), find(("E", e))  # type: ignore[arg-type]
            if ra == re:
                return False
            parent[ra] = re
    return True


def require_berge_acyclic(query: JoinQuery) -> None:
    """Raise :class:`CyclicQueryError` unless ``query`` is Berge-acyclic."""
    if not is_berge_acyclic(query):
        raise CyclicQueryError(
            "query is not Berge-acyclic; the paper's algorithm applies to "
            "Berge-acyclic joins only (Section 1.3). If two relations share "
            "several attributes that always co-occur, combine them into one "
            "attribute first.")


class CyclicQueryError(ValueError):
    """The query is not Berge-acyclic."""
