"""Query hypergraphs, acyclicity, covers, line theory, GenS, reduction."""

from repro.query.builders import (dumbbell_query, line_query, lollipop_query,
                                  star_query, triangle_query,
                                  two_relation_query)
from repro.query.classify import (LeafInfo, Star, edge_join_attributes,
                                  edge_unique_attributes, find_buds,
                                  find_islands, find_leaves, find_stars,
                                  has_island_bud_or_leaf, is_bud, is_island,
                                  is_leaf, is_petal_of, join_attributes,
                                  leaf_info, unique_attributes)
from repro.query.covers import (EdgeCover, GreedyCover, agm_bound,
                                cover_number, fractional_edge_cover,
                                greedy_minimum_edge_cover,
                                optimal_integral_cover)
from repro.query.gens import gens_all, gens_one, remove_safely_dominated
from repro.query.hypergraph import (CyclicQueryError, JoinQuery,
                                    is_berge_acyclic, require_berge_acyclic)
from repro.query.parse import (QueryParseError, format_query, parse_query,
                               parse_query_and_layouts, parse_schemas)
from repro.query.lines import (LineClassification, alternating_intervals,
                               balanced_split, balanced_violations,
                               classify_line, independent_subsets,
                               is_alternating, is_balanced, line_bound,
                               line_cover)
from repro.query.reduce import (EliminationStep, elimination_order,
                                full_reduce, is_fully_reduced, semijoin)

__all__ = [
    "JoinQuery", "is_berge_acyclic", "require_berge_acyclic",
    "CyclicQueryError",
    "line_query", "star_query", "lollipop_query", "dumbbell_query",
    "triangle_query", "two_relation_query",
    "LeafInfo", "Star", "join_attributes", "unique_attributes",
    "edge_join_attributes", "edge_unique_attributes", "is_island", "is_bud",
    "is_leaf", "leaf_info", "find_islands", "find_buds", "find_leaves",
    "find_stars", "has_island_bud_or_leaf", "is_petal_of",
    "EdgeCover", "GreedyCover", "fractional_edge_cover",
    "optimal_integral_cover", "agm_bound", "greedy_minimum_edge_cover",
    "cover_number",
    "gens_all", "gens_one", "remove_safely_dominated",
    "parse_query", "parse_schemas", "parse_query_and_layouts",
    "format_query", "QueryParseError",
    "LineClassification", "line_cover", "alternating_intervals",
    "is_alternating", "is_balanced", "balanced_violations", "balanced_split",
    "classify_line", "independent_subsets", "line_bound",
    "EliminationStep", "elimination_order", "semijoin", "full_reduce",
    "is_fully_reduced",
]
