"""Constructors for the query families the paper studies.

* :func:`line_query` — ``L_n`` (Section 6, Figure 7);
* :func:`star_query` — a core plus ``k`` petals (Section 5, Figure 5);
* :func:`lollipop_query` — a star with one petal extended (Section 7.2,
  Figure 8);
* :func:`dumbbell_query` — two stars joined by a shared petal
  (Section 7.3, Figure 9);
* :func:`triangle_query` — the cyclic ``C_3``, used to exercise the
  acyclicity rejection path (Table 1 context only).

All builders use edge names ``e1, e2, …`` and attribute names
``v1, v2, …`` (petal unique attributes ``u1, u2, …``) matching the
paper's figures, so examples and tests read like the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.query.hypergraph import JoinQuery


def _attach_sizes(edges: dict[str, frozenset[str]],
                  sizes: Sequence[int] | Mapping[str, int] | None
                  ) -> JoinQuery:
    if sizes is None:
        return JoinQuery(edges=edges)
    if isinstance(sizes, Mapping):
        return JoinQuery(edges=edges, sizes=dict(sizes))
    names = sorted(edges, key=lambda e: int(e[1:]))
    if len(sizes) != len(names):
        raise ValueError(f"{len(names)} edges but {len(sizes)} sizes")
    return JoinQuery(edges=edges, sizes=dict(zip(names, sizes)))


def line_query(n: int, sizes: Sequence[int] | None = None) -> JoinQuery:
    """``L_n``: ``e_i = {v_i, v_{i+1}}`` for ``i = 1..n``."""
    if n < 1:
        raise ValueError(f"line query needs n >= 1, got {n}")
    edges = {f"e{i}": frozenset({f"v{i}", f"v{i + 1}"})
             for i in range(1, n + 1)}
    return _attach_sizes(edges, sizes)


def star_query(k: int, sizes: Sequence[int] | None = None,
               *, core_name: str = "e0") -> JoinQuery:
    """A standalone star: core ``e0 = {v1..vk}``, petals ``e_i = {v_i, u_i}``.

    ``sizes`` (when given) lists ``[N_0, N_1, …, N_k]`` — core first.
    """
    if k < 1:
        raise ValueError(f"star query needs k >= 1 petals, got {k}")
    edges: dict[str, frozenset[str]] = {
        core_name: frozenset(f"v{i}" for i in range(1, k + 1))}
    for i in range(1, k + 1):
        edges[f"e{i}"] = frozenset({f"v{i}", f"u{i}"})
    if sizes is None:
        return JoinQuery(edges=edges)
    if len(sizes) != k + 1:
        raise ValueError(f"star with {k} petals needs {k + 1} sizes "
                         f"(core first), got {len(sizes)}")
    names = [core_name] + [f"e{i}" for i in range(1, k + 1)]
    return JoinQuery(edges=edges, sizes=dict(zip(names, sizes)))


def lollipop_query(n: int, sizes: Sequence[int] | None = None) -> JoinQuery:
    """A lollipop (Figure 8): a star whose petal ``e_n`` extends to ``e_{n+1}``.

    Core ``e0 = {v1..vn}``; petals ``e_i = {v_i, u_i}`` for ``i < n``;
    the stick ``e_n = {v_n, v_{n+1}}`` continues into
    ``e_{n+1} = {v_{n+1}, u_{n+1}}``.  ``sizes`` lists
    ``[N_0, N_1, …, N_{n+1}]``.
    """
    if n < 2:
        raise ValueError(f"lollipop needs n >= 2, got {n}")
    edges: dict[str, frozenset[str]] = {
        "e0": frozenset(f"v{i}" for i in range(1, n + 1))}
    for i in range(1, n):
        edges[f"e{i}"] = frozenset({f"v{i}", f"u{i}"})
    edges[f"e{n}"] = frozenset({f"v{n}", f"v{n + 1}"})
    edges[f"e{n + 1}"] = frozenset({f"v{n + 1}", f"u{n + 1}"})
    if sizes is None:
        return JoinQuery(edges=edges)
    names = [f"e{i}" for i in range(0, n + 2)]
    if len(sizes) != len(names):
        raise ValueError(f"lollipop with n={n} needs {len(names)} sizes")
    return JoinQuery(edges=edges, sizes=dict(zip(names, sizes)))


def dumbbell_query(n: int, m: int,
                   sizes: Sequence[int] | None = None) -> JoinQuery:
    """A dumbbell (Figure 9): two stars sharing the bar relation ``e_n``.

    Star one: core ``e0 = {v1..vn}``, petals ``e1..e_{n-1}`` with unique
    attributes, plus the bar ``e_n = {v_n, v_{n+1}}``.  Star two: core
    ``e_m = {v_{n+1}..v_m'}`` with petals ``e_{n+1}..e_{m-1}``.  The bar
    ``e_n`` is a petal of both cores.  ``sizes`` lists ``N_0..N_m`` in
    edge-index order ``e0, e1, …, em``.
    """
    if n < 2 or m < n + 2:
        raise ValueError(f"dumbbell needs n >= 2 and m >= n + 2, "
                         f"got n={n}, m={m}")
    edges: dict[str, frozenset[str]] = {}
    edges["e0"] = frozenset(f"v{i}" for i in range(1, n + 1))
    for i in range(1, n):
        edges[f"e{i}"] = frozenset({f"v{i}", f"u{i}"})
    edges[f"e{n}"] = frozenset({f"v{n}", f"v{n + 1}"})
    core2 = {f"v{n + 1}"}
    for i in range(n + 1, m):
        attr = f"w{i}"
        core2.add(attr)
        edges[f"e{i}"] = frozenset({attr, f"u{i}"})
    edges[f"e{m}"] = frozenset(core2)
    if sizes is None:
        return JoinQuery(edges=edges)
    names = [f"e{i}" for i in range(0, m + 1) if f"e{i}" in edges]
    if len(sizes) != len(names):
        raise ValueError(f"dumbbell needs {len(names)} sizes, "
                         f"got {len(sizes)}")
    return JoinQuery(edges=edges, sizes=dict(zip(names, sizes)))


def triangle_query(sizes: Sequence[int] | None = None) -> JoinQuery:
    """The cyclic triangle ``C_3`` — *not* Berge-acyclic (rejection tests)."""
    edges = {"e1": frozenset({"v1", "v2"}),
             "e2": frozenset({"v1", "v3"}),
             "e3": frozenset({"v2", "v3"})}
    return _attach_sizes(edges, sizes)


def two_relation_query(sizes: Sequence[int] | None = None) -> JoinQuery:
    """The 2-relation join ``R1(v1,v2) ⋈ R2(v2,v3)`` (Section 3)."""
    return line_query(2, sizes)
