"""Edge covers and the AGM bound (Sections 2.2.1, 7.1).

The AGM bound states ``max_R |Q(R)| = min_x ∏_e N(e)^{x(e)}`` over
fractional edge covers ``x`` (``Σ_{e∋v} x(e) ≥ 1`` for every attribute
``v``).  Lemma 2 of the paper shows the optimal cover of an acyclic
query is integral (0/1), so for our constant-size queries we compute it
exactly — both by linear programming (scipy) and by exhaustive search
over integral covers — and cross-check the two in tests.

Section 7.1 needs the *minimum edge cover* (all sizes equal) computed
by the paper's greedy (Algorithm 6), along with the LP-dual *vertex
packing* used to build the worst-case instance of Theorem 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.query.classify import edge_unique_attributes
from repro.query.hypergraph import JoinQuery


@dataclass(frozen=True)
class EdgeCover:
    """A fractional (or integral) edge cover and its AGM value."""

    weights: dict[str, float]
    agm_bound: float

    def support(self) -> frozenset[str]:
        """Edges with weight above numerical noise."""
        return frozenset(e for e, x in self.weights.items() if x > 1e-9)

    def is_integral(self, tol: float = 1e-6) -> bool:
        return all(min(abs(x), abs(x - 1.0)) <= tol
                   for x in self.weights.values())


def fractional_edge_cover(query: JoinQuery) -> EdgeCover:
    """The optimal fractional edge cover by linear programming.

    Minimizes ``Σ_e x(e) · ln N(e)`` (so the AGM bound ``∏ N^x`` is
    minimized) subject to covering every attribute.  Falls back to unit
    costs when the query has no sizes (minimum fractional edge cover).
    """
    edges = query.edge_names
    attrs = sorted(query.attributes)
    if not edges:
        return EdgeCover(weights={}, agm_bound=1.0)
    if query.sizes is not None:
        cost = [math.log(max(query.size(e), 2)) for e in edges]
    else:
        cost = [1.0] * len(edges)
    # linprog solves min c·x s.t. A_ub x <= b_ub; covering is A x >= 1.
    a_ub = np.zeros((len(attrs), len(edges)))
    for i, v in enumerate(attrs):
        for j, e in enumerate(edges):
            if v in query.edges[e]:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(attrs))
    res = linprog(c=cost, A_ub=a_ub, b_ub=b_ub,
                  bounds=[(0, None)] * len(edges), method="highs")
    if not res.success:  # pragma: no cover - defensive
        raise RuntimeError(f"edge-cover LP failed: {res.message}")
    weights = {e: float(x) for e, x in zip(edges, res.x)}
    agm = _agm_value(query, weights)
    return EdgeCover(weights=weights, agm_bound=agm)


def optimal_integral_cover(query: JoinQuery) -> EdgeCover:
    """The best 0/1 edge cover by exhaustive search.

    By Lemma 2 this matches :func:`fractional_edge_cover` on acyclic
    queries.  Exponential in the (constant) query size.
    """
    edges = query.edge_names
    attrs = query.attributes
    best: tuple[float, frozenset[str]] | None = None
    for mask in range(1 << len(edges)):
        chosen = frozenset(edges[i] for i in range(len(edges))
                           if mask >> i & 1)
        covered: set[str] = set()
        for e in chosen:
            covered |= query.edges[e]
        if covered != set(attrs):
            continue
        if query.sizes is not None:
            value = math.fsum(math.log(max(query.size(e), 2)) for e in chosen)
        else:
            value = float(len(chosen))
        if best is None or value < best[0]:
            best = (value, chosen)
    if best is None:
        raise ValueError("query has an attribute covered by no edge")
    weights = {e: (1.0 if e in best[1] else 0.0) for e in edges}
    return EdgeCover(weights=weights, agm_bound=_agm_value(query, weights))


def _agm_value(query: JoinQuery, weights: dict[str, float]) -> float:
    if query.sizes is None:
        return float("nan")
    return math.prod(query.size(e) ** x
                     for e, x in weights.items() if x > 1e-12)


def agm_bound(query: JoinQuery) -> float:
    """``min_x ∏ N(e)^{x(e)}`` — the worst-case join size (AGM)."""
    return fractional_edge_cover(query).agm_bound


@dataclass(frozen=True)
class GreedyCover:
    """Output of the paper's Algorithm 6 greedy minimum edge cover.

    ``packing`` holds one witness attribute per chosen edge — a vertex
    packing by LP duality — used by Theorem 7's instance construction.
    """

    cover: tuple[str, ...]
    packing: tuple[str, ...]

    @property
    def c(self) -> int:
        """The minimum edge cover number."""
        return len(self.cover)


def greedy_minimum_edge_cover(query: JoinQuery) -> GreedyCover:
    """Algorithm 6: repeatedly take an edge containing a unique attribute.

    Each chosen edge contributes one of its (current) unique attributes
    to the vertex packing; the edge and all its attributes are then
    removed.  Residues can contain *buds* — single-attribute edges
    whose attribute other edges also hold; per the Theorem 7 proof
    ("buds can always be ignored as they do not appear … in the minimum
    edge cover") they are dropped without being selected.  For acyclic
    queries this greedy is optimal (Section 7.1): a residue with no
    unique attribute and no bud would have minimum incidence degree 2
    everywhere, i.e. a cycle.  A defensive fallback covers degenerate
    non-acyclic input.
    """
    q = query
    cover: list[str] = []
    packing: list[str] = []
    while q.attributes:
        pick = None
        witness = None
        for e in q.edge_names:
            uniq = edge_unique_attributes(q, e)
            if uniq:
                pick, witness = e, min(uniq)
                break
        if pick is None:
            buds = [e for e in q.edge_names if len(q.edges[e]) == 1]
            if buds:
                q = q.drop_edges([buds[0]])
                continue
            pick = next(e for e in q.edge_names if q.edges[e])
            witness = min(q.edges[pick])
        cover.append(pick)
        packing.append(witness)  # type: ignore[arg-type]
        removed = q.edges[pick]
        q = q.drop_edges([pick]).drop_attributes(removed)
        q = q.drop_edges([e for e in q.edge_names if not q.edges[e]])
    return GreedyCover(cover=tuple(cover), packing=tuple(packing))


def cover_number(query: JoinQuery) -> int:
    """``c``: the minimum edge cover number of the hypergraph."""
    return greedy_minimum_edge_cover(query).c
