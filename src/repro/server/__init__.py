"""The long-lived query service: the paper's model as a multi-tenant engine.

The cost model charges every algorithm against one memory budget ``M``
and one block size ``B``.  A one-shot CLI run owns that machine alone;
this package multiplexes *concurrent sessions* over it:

* :mod:`repro.server.catalog` — load an instance once, serve many
  queries (ref-counting, eviction, generations);
* :mod:`repro.server.admission` — the global budget ``M`` is enforced
  across in-flight queries: declare your planner-estimated need, get a
  grant, a queue slot, or a rejection;
* :mod:`repro.server.pool` — one cross-query buffer pool, with each
  session's charges routed to its own :class:`~repro.em.stats.IOStats`;
* :mod:`repro.server.session` — parse → classify → plan → execute with
  per-session counter/trace isolation (solo-run byte identity);
* :mod:`repro.server.flight` — the query flight recorder: one bounded
  ring of per-query lifecycle records behind ``/debug/queries``;
* :mod:`repro.server.service` — the engine tying those together, plus
  the thread-based batch executor;
* :mod:`repro.server.http` — ``/metrics`` (Prometheus text), ``/query``
  (JSON) and friends, behind ``repro serve``.
"""

from repro.server.admission import (AdmissionController, AdmissionError,
                                    AdmissionRejected, AdmissionTimeout,
                                    Grant, Quota)
from repro.server.catalog import Catalog, CatalogEntry, CatalogError
from repro.server.flight import FlightRecord, FlightRecorder
from repro.server.http import ServiceServer, make_server, start_http_server
from repro.server.pool import PoolView, SharedPool
from repro.server.service import QueryService, ServiceError
from repro.server.session import QueryResult, Session, SessionClosed

__all__ = [
    "AdmissionController", "AdmissionError", "AdmissionRejected",
    "AdmissionTimeout", "Grant", "Quota",
    "Catalog", "CatalogEntry", "CatalogError",
    "FlightRecord", "FlightRecorder",
    "SharedPool", "PoolView",
    "Session", "SessionClosed", "QueryResult",
    "QueryService", "ServiceError",
    "ServiceServer", "make_server", "start_http_server",
]
