"""The engine: catalog + admission + shared pool + session registry.

A :class:`QueryService` is what ``repro serve`` keeps alive between
requests.  It owns the pieces individual runs would otherwise rebuild:

* the :class:`~repro.server.catalog.Catalog` of loaded instances (CSV
  parsed once, served to every session);
* the :class:`~repro.server.admission.AdmissionController` enforcing
  the *global* memory budget ``M`` across in-flight queries;
* optionally one :class:`~repro.server.pool.SharedPool` of page frames
  that all sessions hit (``pool_frames > 0``);
* a :class:`~repro.obs.metrics.MetricsRegistry` aggregating
  service-wide instruments for the ``/metrics`` exposition;
* a :class:`~repro.server.flight.FlightRecorder` keeping the newest
  query lifecycle records (``GET /debug/queries``); pass
  ``flight_records=0`` to turn recording off — I/O counters are
  byte-identical either way (the recorder only copies deltas the
  session already computed).

:meth:`execute_batch` is the thread-based executor: requests are dealt
round-robin onto persistent worker sessions (deterministic assignment,
so pooled aggregate counters are schedule-independent) and each
worker's queue runs on its own thread.  Under the GIL the win is not
parallel compute — it is amortization: instances materialize once per
worker, hot pages hit the shared pool, and admission waits overlap.
"""

from __future__ import annotations

import itertools
import threading
from typing import Mapping

from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.server.admission import AdmissionController, Quota
from repro.server.catalog import Catalog
from repro.server.flight import FlightRecorder
from repro.server.pool import SharedPool
from repro.server.session import QueryResult, Session


class ServiceError(RuntimeError):
    """Service-level misuse (unknown session, closed service, ...)."""


class QueryService:
    """A long-lived, multi-session query engine over one machine."""

    def __init__(self, *, M: int = 4096, B: int = 64,
                 default_query_M: int | None = None,
                 pool_frames: int = 0, pool_policy: str = "lru",
                 max_pin_share: float | None = 0.5,
                 admission_policy: str = "fifo",
                 admission_timeout: float | None = 30.0,
                 catalog_capacity: int | None = None,
                 workers: int = 8, metrics: MetricsRegistry | None = None,
                 flight_records: int = 256,
                 slow_query_ms: float | None = None,
                 default_quota: Quota | None = None,
                 fitted: Mapping | None = None,
                 ) -> None:
        if B < 1 or M < B:
            raise ValueError(f"need 1 <= B <= M, got M={M}, B={B}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.M = M
        self.B = B
        # What a query gets when it does not ask for a machine size.
        # Defaults to the full budget — solo-run semantics; concurrency
        # then comes from queries declaring smaller needs.
        self.default_query_M = M if default_query_M is None \
            else default_query_M
        self.workers = workers
        self.metrics = MetricsRegistry() if metrics is None else metrics
        # em-guarded-by: none -- Catalog serializes internally; .add()
        # here is Catalog.add (a locked method), not a bare container.
        self.catalog = Catalog(capacity=catalog_capacity)
        self.admission = AdmissionController(
            M, policy=admission_policy, default_timeout=admission_timeout,
            default_quota=default_quota)
        self.flight = (FlightRecorder(flight_records,
                                      slow_ms=slow_query_ms)
                       if flight_records else None)
        #: parsed BENCH_fitted.json document (or None): what
        #: :meth:`explain` predicts against.
        self.fitted = dict(fitted) if fitted is not None else None
        self.pool = (SharedPool(frames=pool_frames, policy=pool_policy,
                                B=B, max_pin_share=max_pin_share,
                                metrics=self.metrics)
                     if pool_frames else None)
        self._sessions: dict[str, Session] = {}  # em-guarded-by: _lock
        self._workers: list[Session] = []  # em-guarded-by: _lock
        self._lock = threading.Lock()
        # Registry updates are read-modify-write; sessions finish on
        # arbitrary threads, so serialize the folds.
        self._metrics_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._worker_errors = 0  # em-guarded-by: _metrics_lock
        self._serve_crash: str | None = None  # em-guarded-by: _metrics_lock
        self.closed = False  # em-guarded-by: _lock

    # -- data ----------------------------------------------------------

    def load_tables(self, name: str, tables: Mapping[str, object], *,
                    replace: bool = False, delimiter: str = ",",
                    header: bool = True):
        """Load ``{relation: csv path}`` into the catalog as ``name``."""
        return self.catalog.load_csv(name, tables, replace=replace,
                                     delimiter=delimiter, header=header)

    def add_instance(self, name: str,
                     layouts: Mapping[str, tuple[str, ...]],
                     rows: Mapping[str, list[tuple]], *,
                     replace: bool = False):
        """Register an in-memory dataset (tests, generators)."""
        return self.catalog.add(name, layouts, rows, replace=replace)

    # -- sessions ------------------------------------------------------

    def session(self, name: str | None = None, *, tracer=None) -> Session:
        """Open (or re-join) a named session.

        Without a name a fresh one is minted.  Re-joining an existing
        live session by name is how stateless protocols (HTTP) keep a
        connection: same devices, same instance caches, same pins.
        """
        with self._lock:
            self._require_open()
            if name is not None:
                live = self._sessions.get(name)
                if live is not None and not live.closed:
                    return live
            if name is None:
                name = f"s{next(self._session_ids)}"
            session = Session(self, name, tracer=tracer)
            self._sessions[name] = session
            return session

    def close_session(self, name: str) -> None:
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise ServiceError(f"no session named {name!r}")
        session.close()

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- execution -----------------------------------------------------

    def execute(self, query, *, session: str | None = None,
                **kwargs) -> QueryResult:
        """One query: through a named session, or one-shot."""
        if session is not None:
            return self.session(session).execute(query, **kwargs)
        s = self.session()
        try:
            return s.execute(query, **kwargs)
        finally:
            self.close_session(s.name)

    def execute_batch(self, requests: list[Mapping], *,
                      concurrency: int | None = None) -> list[QueryResult]:
        """Run many requests over persistent worker sessions.

        Each request is a mapping of :meth:`Session.execute` keyword
        arguments plus ``"query"``.  Request ``i`` runs on worker
        ``i % concurrency`` — a deterministic deal, so pooled aggregate
        counters do not depend on thread timing — and each worker
        drains its share in order on its own thread.  Results come back
        in request order; the first worker exception (if any) is
        re-raised after all threads join.
        """
        self._require_open()
        if not requests:
            return []
        c = max(1, min(self.workers if concurrency is None else concurrency,
                       len(requests)))
        workers = self._worker_sessions(c)
        results: list[QueryResult | None] = [None] * len(requests)
        errors: list[tuple[int, BaseException]] = []

        def drain(w: int) -> None:
            for i in range(w, len(requests), c):
                req = dict(requests[i])
                query = req.pop("query", None)
                try:
                    if query is None:
                        raise ServiceError(
                            f"batch request {i} has no 'query'")
                    results[i] = workers[w].execute(query, **req)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append((i, exc))
                    self._note_worker_error(workers[w].name, i, query,
                                            req, exc)
                    return

        threads = [threading.Thread(target=drain, args=(w,),
                                    name=f"repro-batch-w{w}")
                   for w in range(c)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            i, exc = min(errors, key=lambda e: e[0])
            raise ServiceError(
                f"batch request {i} failed on worker "
                f"{i % c}: {exc!r}") from exc
        return results

    def _worker_sessions(self, c: int) -> list[Session]:
        """Persistent workers, grown on demand, reused across batches."""
        with self._lock:
            while len(self._workers) < c:
                w = Session(self, f"w{len(self._workers)}")
                self._sessions[w.name] = w
                self._workers.append(w)
            return self._workers[:c]

    def _note_worker_error(self, worker: str, index: int, query,
                           req: Mapping, exc: BaseException) -> None:
        """Result-channel propagation for batch workers.

        Every failure lands in ``stats()["errors"]``; failures the
        session never flight-recorded (poisoned requests that die
        before admission — parse errors, unknown instances, a missing
        ``"query"`` key) additionally get a flight record here, so a
        poisoned query is never invisible.
        """
        with self._metrics_lock:
            self._worker_errors += 1
            self.metrics.counter("service.worker_errors").inc()
        flight = self.flight
        if flight is None or getattr(exc, "_flight_recorded", False):
            return
        flight.record(
            session=worker, owner=str(req.get("tenant") or worker),
            query="<missing>" if query is None else str(query),
            instance=str(req.get("instance", "default")),
            status="error", arrival_unix=flight.clock(),
            wait_ms=0.0, run_ms=0.0, total_ms=0.0,
            error=f"batch request {index}: {exc!r}")

    def note_server_crash(self, exc: BaseException) -> None:
        """The HTTP serve thread died: make it visible in ``/stats``."""
        with self._metrics_lock:
            self._serve_crash = repr(exc)
            self.metrics.counter("service.serve_crashes").inc()

    # -- fairness ------------------------------------------------------

    def set_quota(self, owner: str, *, max_inflight: int | None = None,
                  max_share: float | None = None):
        """Cap one tenant's concurrency / budget share (both ``None``
        clears the quota).  Owners default to session names; HTTP
        clients can pool sessions under one owner via ``tenant``."""
        return self.admission.set_quota(owner, max_inflight=max_inflight,
                                        max_share=max_share)

    # -- explain -------------------------------------------------------

    def explain(self, query, *, session: str | None = None,
                instance: str = "default", **kwargs):
        """Run one query and pair it with its Table-1 prediction.

        Returns ``(QueryResult, ExplainReport)``.  The prediction side
        needs a fitted-constants document (the service's ``fitted``);
        without one the report carries the reason instead.
        """
        from repro.analysis.predict import ExplainReport
        from repro.analysis.predict import explain as predict_explain
        from repro.query.parse import parse_query_and_layouts

        q = (parse_query_and_layouts(query)[0]
             if isinstance(query, str) else query)
        result = self.execute(query, session=session,
                              instance=instance, **kwargs)
        if self.fitted is None:
            return result, ExplainReport(
                prediction=None,
                reason=("no fitted-constants document loaded; generate "
                        "one with 'repro fit --all --write-fitted' and "
                        "start the service with it"),
                measured_io=result.io["total"],
                measured_phases=dict(result.phases))
        entry = self.catalog.acquire(instance)
        try:
            sizes = {rel: len(entry.rows[rel]) for rel in q.edge_names}
        finally:
            self.catalog.release(entry)
        report = predict_explain(
            q, sizes, result.machine["M"], result.machine["B"],
            result.io["total"], result.phases, self.fitted)
        return result, report

    # -- observability -------------------------------------------------

    def _observe(self, result: QueryResult) -> None:
        """Fold one finished query into the service-wide registry."""
        with self._metrics_lock:
            self._observe_locked(result)

    def _observe_locked(self, result: QueryResult) -> None:  # em-holds: _metrics_lock
        m = self.metrics
        m.counter("service.queries").inc()
        m.counter("service.results").inc(result.results)
        m.counter("service.io_read_pages").inc(result.io["reads"])
        m.counter("service.io_write_pages").inc(result.io["writes"])
        m.histogram("service.query_wall_ms").observe(
            max(0.0, result.wall_s * 1e3))
        m.histogram("service.admission_wait_ms").observe(
            max(0.0, float(result.admission.get("wait_ms", 0.0))))
        m.counter(f"service.shape.{result.shape}").inc()

    def refresh_metrics(self) -> MetricsRegistry:
        """Update the point-in-time gauges, return the registry."""
        with self._metrics_lock:
            return self._refresh_metrics_locked()

    def _refresh_metrics_locked(self) -> MetricsRegistry:  # em-holds: _metrics_lock
        m = self.metrics
        adm = self.admission.snapshot()
        m.gauge("admission.granted_tuples").set(adm["granted"])
        m.gauge("admission.queue_depth").set(adm["queue_depth"])
        m.gauge("admission.in_flight").set(adm["in_flight"])
        m.gauge("catalog.entries").set(len(self.catalog.names()))
        with self._lock:
            m.gauge("service.sessions").set(len(self._sessions))
        if self.pool is not None:
            m.gauge("pool.resident_pages").set(
                self.pool.pool.resident_pages)
        if self.flight is not None:
            fs = self.flight.stats()
            m.gauge("flight.records_seen").set(fs["seen"])
            m.gauge("flight.records_stored").set(fs["stored"])
            m.gauge("flight.slow_queries").set(fs["slow"])
        return m

    def prometheus(self) -> str:
        """The ``/metrics`` payload."""
        return to_prometheus(self.refresh_metrics())

    def stats(self) -> dict[str, object]:
        """The ``/stats`` payload: one JSON view of the whole engine."""
        with self._lock:
            sessions = [s.stats() for s in self._sessions.values()]
        with self._metrics_lock:
            errors = {"worker_errors": self._worker_errors,
                      "serve_crash": self._serve_crash}
        return {
            "machine": {"M": self.M, "B": self.B,
                        "default_query_M": self.default_query_M},
            "admission": self.admission.snapshot(),
            "catalog": self.catalog.info(),
            "pool": None if self.pool is None else self.pool.stats(),
            "sessions": sessions,
            "flight": None if self.flight is None
            else self.flight.stats(),
            "errors": errors,
        }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._workers.clear()
        for s in sessions:
            s.close()
        if self.pool is not None:
            self.pool.close()

    def _require_open(self) -> None:
        if self.closed:
            raise ServiceError("the service is closed")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QueryService(M={self.M}, B={self.B}, "
                f"sessions={len(self._sessions)}, "
                f"pool={'on' if self.pool else 'off'})")
