"""The cross-query shared buffer pool and its per-session views.

One :class:`~repro.em.bufferpool.BufferPool` (anchored on a private
device that only lends its ``B``) is shared by every session: hot base
relations are faulted in once and hit from cache service-wide.  Each
session talks to it through a :class:`PoolView` — an object with the
``BufferPool`` charging surface that a session device adopts via
:meth:`~repro.em.device.Device.attach_pool`.  The view

* translates the session's :class:`~repro.em.file.EMFile` objects into
  pool-wide *labels*, so two sessions' independent materializations of
  the same catalog relation land on the same frames.  Shared labels are
  registered explicitly (``share``); everything else (sort runs, temp
  partitions) gets a view-private label, invisible to other sessions;
* routes every charge ``via`` the session's device, so hits, misses and
  write-backs appear in *that* session's counters — per-session
  accounting stays byte-identical to what the session alone caused;
* attributes pins to the session (``owner``), so closing a session
  releases exactly its own pins (see ``BufferPool.release_owner``).

Page numbering depends on ``B``, so shared labels embed the block size
and the catalog generation: sessions on a different ``B`` (or stale
data) simply do not share frames rather than corrupting each other's.

All entry points serialize on one lock; the pool itself is not
thread-safe and the GIL does not make dict check-then-act atomic.
"""

from __future__ import annotations

import threading
from typing import Hashable, TYPE_CHECKING

from repro.em.bufferpool import BufferPool, PoolConfig
from repro.em.device import Device

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.file import EMFile


def shared_label(instance: str, generation: int, B: int, rel: str) -> str:
    """The pool-wide name for a base relation's pages."""
    return f"shared/{instance}@g{generation}/B{B}/{rel}"


class SharedPool:
    """The service-wide pool plus the lock all views funnel through."""

    def __init__(self, *, frames: int, policy: str = "lru", B: int,
                 max_pin_share: float | None = None,
                 metrics=None) -> None:
        config = PoolConfig(frames=frames, policy=policy,
                            max_pin_share=max_pin_share)
        # The anchor device exists to carry B and the residency gauge;
        # no query I/O is ever charged to it (views charge via= their
        # session devices).
        self.device = Device(M=max(B, frames * B), B=B, metrics=metrics)
        self.B = B
        self.pool = BufferPool(self.device, config)
        # em-lock: coarse -- every charge funnels through it by design;
        # the pool is the one service-wide serialization point.
        self.lock = threading.Lock()

    def view(self, device: Device, owner: Hashable) -> "PoolView":
        """A session-facing view charging ``device``, pinning as
        ``owner``."""
        if device.B != self.B:
            raise ValueError(
                f"session device has B={device.B} but the shared pool "
                f"pages with B={self.B}; sharing frames would mix page "
                f"boundaries")
        return PoolView(self, device, owner)

    def stats(self) -> dict[str, object]:
        with self.lock:
            return {
                "frames": self.pool.n_frames,
                "resident_pages": self.pool.resident_pages,
                "policy": self.pool.config.policy,
                "max_pin_share": self.pool.config.max_pin_share,
                "pins": {str(owner): counts for owner, counts in
                         self.pool.pin_accounting().items()},
            }

    def close(self) -> None:
        with self.lock:
            self.pool.close()


class PoolView:
    """One session's window onto the shared pool.

    Implements the surface ``Device.charge_read``/``charge_write`` and
    ``Device.reset_stats`` expect of a pool (``read_page``,
    ``write_page``, ``flush``, ``clear``), so a session device can
    simply :meth:`~repro.em.device.Device.attach_pool` it.
    """

    def __init__(self, shared: SharedPool, device: Device,
                 owner: Hashable) -> None:
        self.shared = shared
        self.device = device
        self.owner = owner
        # EMFile (by identity) -> label.  Shared entries persist for the
        # view's lifetime; private ones are forgotten at end_query() so
        # dead temp files do not accumulate.
        self._shared_labels: dict["EMFile", str] = {}  # em-guarded-by: shared.lock
        self._private_labels: dict["EMFile", str] = {}  # em-guarded-by: shared.lock
        self._private_set: set[str] = set()  # em-guarded-by: shared.lock
        self._n_private = 0  # em-guarded-by: shared.lock

    # -- label management ---------------------------------------------

    def share(self, f: "EMFile", label: str) -> None:
        """Map this session's file onto a pool-wide shared label."""
        with self.shared.lock:
            self._shared_labels[f] = label

    def _label(self, f: "EMFile") -> str:  # em-holds: shared.lock
        label = self._shared_labels.get(f)
        if label is not None:
            return label
        label = self._private_labels.get(f)
        if label is None:
            # The counter (not the file name) guarantees uniqueness:
            # distinct live files may share a name across instances.
            self._n_private += 1
            name = getattr(f, "name", None) or str(f)
            label = f"view/{self.owner}/{self._n_private}:{name}"
            self._private_labels[f] = label
            self._private_set.add(label)
        return label

    # -- the Device pool surface --------------------------------------

    def read_page(self, f: "EMFile", page: int) -> None:
        with self.shared.lock:
            self.shared.pool.read_page(self._label(f), page,
                                       via=self.device)

    def write_page(self, f: "EMFile", page: int) -> None:
        with self.shared.lock:
            self.shared.pool.write_page(self._label(f), page,
                                        via=self.device)

    def flush(self) -> None:
        """Write back only this session's deferred dirty pages."""
        with self.shared.lock:
            self.shared.pool.flush(device=self.device)

    def clear(self) -> None:
        """Drop this view's private frames without write-back.

        The shared-label frames stay: they belong to every session, and
        base pages are only ever clean (inputs materialize uncharged,
        bypassing the pool).
        """
        with self.shared.lock:
            self.shared.pool.drop_matching(
                lambda key: key[0] in self._private_set,
                include_dirty=True)
            self._private_labels.clear()
            self._private_set.clear()

    # -- session-facing extras ----------------------------------------

    def pin(self, f: "EMFile", page: int) -> None:
        with self.shared.lock:
            self.shared.pool.pin(self._label(f), page, via=self.device,
                                 owner=self.owner)

    def unpin(self, f: "EMFile", page: int) -> None:
        with self.shared.lock:
            self.shared.pool.unpin(self._label(f), page, owner=self.owner)

    def end_query(self) -> None:
        """Retire one query's working set: flush own dirty pages, then
        drop the private (temp-file) frames they lived in.

        Temp files are query-private by construction, so keeping their
        frames would only crowd out shared pages for other sessions —
        and dropping them keeps pooled counters independent of what ran
        before on this session.
        """
        with self.shared.lock:
            pool = self.shared.pool
            pool.flush(device=self.device)
            pool.drop_matching(lambda key: key[0] in self._private_set)
            self._private_labels.clear()
            self._private_set.clear()

    def close(self) -> None:
        """Session teardown: release only *this* session's pins, write
        back its dirty pages, and drop its private frames."""
        with self.shared.lock:
            pool = self.shared.pool
            pool.release_owner(self.owner)
            pool.flush(device=self.device)
            pool.drop_matching(lambda key: key[0] in self._private_set)
            self._private_labels.clear()
            self._private_set.clear()
            self._shared_labels.clear()
