"""The service's live surface: stdlib HTTP, JSON in, JSON out.

Routes (all rooted at the bind address of ``repro serve``):

* ``GET /metrics`` — the Prometheus text exposition of the service
  registry (:func:`repro.obs.export.metrics_payload`), gauges refreshed
  at scrape time;
* ``GET /healthz`` — liveness;
* ``GET /stats`` — the full engine view (admission, catalog, pool,
  sessions) as JSON;
* ``GET /catalog`` — loaded instances;
* ``GET /debug/queries`` — newest flight records (compact rows;
  ``?n=`` caps the count, ``?slow=1`` filters to slow queries), plus
  the ring's seen/stored/overwritten accounting so a truncated history
  is visible as such;
* ``GET /debug/queries/<id>`` — one full flight record;
* ``POST /query`` — run one query.  Body::

      {"query": "e1(v1,v2), e2(v2,v3), e3(v3,v4)",
       "instance": "default",          // catalog name
       "M": 8, "B": 2,                 // per-query machine (optional)
       "session": "alice",             // sticky session (optional)
       "tenant": "team-a",             // admission owner (optional)
       "collect": false,               // include result rows
       "timeout_s": 5}                 // admission patience

  Without ``session`` the query runs one-shot (open, run, close);
  with it, repeated requests share devices, instance caches and pins —
  the connection abstraction over a stateless protocol.  With
  ``?explain=1`` the response gains an ``"explain"`` key: predicted vs
  measured I/O per phase from the service's fitted Table-1 constants
  (or the reason no prediction applies).

Admission failures map to HTTP the obvious way: a need larger than the
global budget is 422 (no retry will help), a queue timeout is 503 with
``Retry-After`` (the service is busy, try again).  Malformed bodies and
unknown queries/instances are 400; anything unexpected inside the
engine is a 500 JSON document, never a dropped connection.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import metrics_payload
from repro.query.parse import QueryParseError
from repro.server.admission import AdmissionRejected, AdmissionTimeout
from repro.server.catalog import CatalogError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.service import QueryService


class ServiceServer(ThreadingHTTPServer):
    """One HTTP front end bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, addr: tuple[str, int],
                 service: "QueryService") -> None:
        super().__init__(addr, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # the service reports through /metrics, not stderr

    def _send(self, status: int, body: bytes, content_type: str,
              headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, doc, headers=None) -> None:
        body = json.dumps(doc, indent=1, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json", headers)

    # -- routes --------------------------------------------------------

    def do_GET(self):  # noqa: N802 - http.server API
        service = self.server.service
        parts = urlsplit(self.path)
        path, query = parts.path, parse_qs(parts.query)
        if path == "/metrics":
            self._send(200, metrics_payload(service.refresh_metrics()),
                       "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            self._json(200, {"ok": not service.closed})
        elif path == "/stats":
            self._json(200, service.stats())
        elif path == "/catalog":
            self._json(200, service.catalog.info())
        elif path == "/debug/queries" or path.startswith("/debug/queries/"):
            self._debug_queries(service, path, query)
        else:
            self._json(404, {"error": f"unknown path {path!r}",
                             "routes": ["/metrics", "/healthz", "/stats",
                                        "/catalog", "/debug/queries",
                                        "/debug/queries/<id>",
                                        "POST /query"]})

    def _debug_queries(self, service, path: str, query: dict) -> None:
        flight = service.flight
        if flight is None:
            self._json(404, {"error": "flight recording is off "
                                      "(service flight_records=0)"})
            return
        tail = path[len("/debug/queries"):].strip("/")
        if tail:
            try:
                record_id = int(tail)
            except ValueError:
                self._json(400, {"error": f"bad record id {tail!r}"})
                return
            rec = flight.get(record_id)
            if rec is None:
                self._json(404, {
                    "error": f"no flight record {record_id} (kept: "
                             f"newest {flight.capacity}; "
                             f"{flight.overwritten} overwritten)"})
            else:
                self._json(200, rec.as_dict())
            return
        try:
            n = int(query["n"][0]) if "n" in query else None
        except ValueError:
            self._json(400, {"error": f"bad n={query['n'][0]!r}"})
            return
        slow_only = query.get("slow", ["0"])[0] not in ("0", "", "false")
        records = flight.records(n, slow_only=slow_only)
        self._json(200, {**flight.stats(),
                         "returned": len(records),
                         "records": [r.summary() for r in records]})

    def do_POST(self):  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        if parts.path != "/query":
            self._json(404, {"error": "POST only to /query"})
            return
        explain = parse_qs(parts.query).get(
            "explain", ["0"])[0] not in ("0", "", "false")
        try:
            length = int(self.headers.get("Content-Length") or 0)
            req = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(req, dict) or "query" not in req:
                raise ValueError('the body needs a "query" field')
            kwargs = {
                "instance": req.get("instance", "default"),
                "collect": bool(req.get("collect", False)),
            }
            if req.get("M") is not None:
                kwargs["M"] = int(req["M"])
            if req.get("B") is not None:
                kwargs["B"] = int(req["B"])
            if req.get("tenant") is not None:
                kwargs["tenant"] = str(req["tenant"])
            if "timeout_s" in req:
                kwargs["timeout"] = (None if req["timeout_s"] is None
                                     else float(req["timeout_s"]))
        except (TypeError, ValueError, json.JSONDecodeError) as exc:
            self._json(400, {"error": f"bad request body: {exc}"})
            return
        service = self.server.service
        report = None
        try:
            if explain:
                result, report = service.explain(
                    req["query"], session=req.get("session"), **kwargs)
            else:
                result = service.execute(
                    req["query"], session=req.get("session"), **kwargs)
        except AdmissionRejected as exc:
            self._json(422, {"error": str(exc), "kind": "rejected"})
        except AdmissionTimeout as exc:
            self._json(503, {"error": str(exc), "kind": "timeout"},
                       headers={"Retry-After": "1"})
        except (QueryParseError, CatalogError) as exc:
            # Only errors provably caused by the request map to 400;
            # anything else is the engine's fault and must say so
            # (a bare KeyError here used to masquerade as a client
            # error, and an unexpected exception killed the handler
            # thread mid-response).
            self._json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - deliberate catch-all
            self._json(500, {"error": f"{type(exc).__name__}: {exc}",
                             "kind": "internal"})
        else:
            doc = result.as_dict()
            if report is not None:
                doc["explain"] = report.as_dict()
            self._json(200, doc)


def make_server(service: "QueryService", host: str = "127.0.0.1",
                port: int = 8707) -> ServiceServer:
    """Bind (``port=0`` picks a free one) without starting to serve."""
    return ServiceServer((host, port), service)


def start_http_server(service: "QueryService", host: str = "127.0.0.1",
                      port: int = 0) -> ServiceServer:
    """Bind and serve on a daemon thread (tests, embedding).

    Returns the server; ``server_port`` holds the bound port and
    ``shutdown()`` stops the loop.
    """
    server = make_server(service, host, port)

    def _serve() -> None:
        try:
            server.serve_forever()
        except Exception as exc:  # noqa: BLE001 - surfaced via /stats
            # A dead serve loop with no symptom is the worst failure
            # mode a daemon thread has; park the reason where stats()
            # reports it, then let the thread die loudly.
            service.note_server_crash(exc)
            raise

    thread = threading.Thread(target=_serve, name="repro-serve",
                              daemon=True)
    thread.start()
    return server
