"""The instance catalog: load data once, serve many queries.

A one-shot ``repro run`` pays the host-side cost of parsing CSVs and
materializing relations for every invocation.  The catalog keeps each
named dataset host-resident — attribute layouts plus typed rows, the
exact value :meth:`~repro.data.instance.Instance.from_dicts` consumes —
so sessions materialize instances onto their devices from memory,
byte-identically to a solo run (inputs are uncharged either way).

Entries are ref-counted (:meth:`acquire` / :meth:`release`): eviction
under a capacity limit only removes entries no session is using, in
least-recently-acquired order.  Replacing an entry bumps its
``generation`` so sessions holding materialized copies of the old data
can tell they are stale.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.data.io import read_csv_rows


class CatalogError(KeyError):
    """Unknown instance name, or invalid catalog operation."""


class CatalogEntry:
    """One named dataset: layouts, typed rows, and bookkeeping."""

    __slots__ = ("name", "layouts", "rows", "generation", "pins")

    def __init__(self, name: str,
                 layouts: Mapping[str, tuple[str, ...]],
                 rows: Mapping[str, list[tuple]],
                 generation: int = 1) -> None:
        if set(layouts) != set(rows):
            raise ValueError(
                f"layouts and rows disagree on relations: "
                f"{sorted(set(layouts) ^ set(rows))}")
        for rel, attrs in layouts.items():
            width = len(attrs)
            for t in rows[rel]:
                if len(t) != width:
                    raise ValueError(
                        f"instance {name!r}, relation {rel!r}: row {t!r} "
                        f"has {len(t)} fields, layout has {width}")
        self.name = name
        self.layouts = {rel: tuple(attrs) for rel, attrs in layouts.items()}
        self.rows = {rel: list(rs) for rel, rs in rows.items()}
        self.generation = generation
        self.pins = 0

    @property
    def sizes(self) -> dict[str, int]:
        return {rel: len(rs) for rel, rs in self.rows.items()}

    def info(self) -> dict[str, object]:
        return {"name": self.name, "generation": self.generation,
                "pins": self.pins, "relations": self.sizes}


class Catalog:
    """Named, ref-counted, evictable instances (thread-safe)."""

    def __init__(self, *, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Insertion/refresh order doubles as least-recently-acquired.
        self._entries: dict[str, CatalogEntry] = {}  # em-guarded-by: _lock
        self.stats = {"loads": 0, "hits": 0,  # em-guarded-by: _lock
                      "evictions": 0, "replaced": 0}

    # -- loading -------------------------------------------------------

    def add(self, name: str, layouts: Mapping[str, tuple[str, ...]],
            rows: Mapping[str, list[tuple]], *,
            replace: bool = False) -> CatalogEntry:
        """Register a dataset from in-memory rows."""
        with self._lock:
            old = self._entries.get(name)
            if old is not None and not replace:
                raise CatalogError(
                    f"instance {name!r} is already loaded "
                    f"(pass replace=True to supersede it)")
            generation = 1 if old is None else old.generation + 1
            entry = CatalogEntry(name, layouts, rows, generation)
            if old is not None:
                self.stats["replaced"] += 1
                del self._entries[name]  # re-insert at the fresh end
            self._entries[name] = entry
            self.stats["loads"] += 1
            self._evict_over_capacity()
            return entry

    def load_csv(self, name: str,  # em-effects: HOST_ONLY -- reads host CSVs once, outside any measured run
                 tables: Mapping[str, str], *,
                 delimiter: str = ",", header: bool = True,
                 replace: bool = False) -> CatalogEntry:
        """Load ``{relation: csv path}`` from disk, once, as ``name``.

        Rows are normalized exactly like :func:`repro.data.io.load_csv`
        (sorted, de-duplicated), so a session materializing from this
        entry sees the same relation a solo ``repro run`` would.
        """
        layouts: dict[str, tuple[str, ...]] = {}
        rows: dict[str, list[tuple]] = {}
        for rel, path in tables.items():
            attrs, typed = read_csv_rows(path, delimiter=delimiter,
                                         header=header)
            layouts[rel] = attrs
            rows[rel] = sorted(set(typed))
        return self.add(name, layouts, rows, replace=replace)

    # -- lookup and ref-counting --------------------------------------

    def get(self, name: str) -> CatalogEntry:
        """Look up without pinning (introspection only)."""
        with self._lock:
            return self._get(name)

    def acquire(self, name: str) -> CatalogEntry:
        """Pin an entry for use; pairs with :meth:`release`."""
        with self._lock:
            entry = self._get(name)
            entry.pins += 1
            self.stats["hits"] += 1
            # Refresh recency: move to the most-recently-acquired end.
            del self._entries[name]
            self._entries[name] = entry
            return entry

    def release(self, entry: CatalogEntry) -> None:
        with self._lock:
            if entry.pins <= 0:
                raise CatalogError(
                    f"release of instance {entry.name!r} without a "
                    f"matching acquire")
            entry.pins -= 1

    # -- eviction ------------------------------------------------------

    def evict(self, name: str, *, force: bool = False) -> bool:
        """Drop an entry; refuses (returns False) while it is pinned,
        unless ``force``."""
        with self._lock:
            entry = self._get(name)
            if entry.pins > 0 and not force:
                return False
            del self._entries[name]
            self.stats["evictions"] += 1
            return True

    def names(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def info(self) -> dict[str, object]:
        with self._lock:
            return {"capacity": self.capacity,
                    "entries": [e.info() for e in self._entries.values()],
                    **self.stats}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    # -- internals -----------------------------------------------------

    def _get(self, name: str) -> CatalogEntry:  # em-holds: _lock
        entry = self._entries.get(name)
        if entry is None:
            raise CatalogError(
                f"no instance {name!r} in the catalog "
                f"(loaded: {sorted(self._entries)})")
        return entry

    def _evict_over_capacity(self) -> None:  # em-holds: _lock
        """Drop least-recently-acquired unpinned entries over capacity.

        Pinned entries are immune, so the catalog may transiently sit
        over capacity while everything is in use.
        """
        if self.capacity is None:
            return
        while len(self._entries) > self.capacity:
            victim = next((n for n, e in self._entries.items()
                           if e.pins == 0), None)
            if victim is None:
                return
            del self._entries[victim]
            self.stats["evictions"] += 1
