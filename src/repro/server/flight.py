"""The query flight recorder: one lifecycle record per query.

The measurement substrate observes *devices* (tracer, spans, metrics);
nothing so far observed a *query*.  A :class:`FlightRecorder` on the
:class:`~repro.server.service.QueryService` closes that gap: every
query executed through a session — including the ones admission
rejects or times out — leaves a structured :class:`FlightRecord` with
its arrival/grant/finish timeline, admission outcome (wait time, queue
depth at arrival, quota state), owner-attributed pool cache deltas,
per-phase I/O, peak memory, and result count.

Like every observer in this tree the recorder is strictly passive: it
copies counter deltas the session already computed, it never charges
the device, so I/O counters are byte-identical with recording on or
off (``benchmarks/bench_service_throughput.py`` pins this next to the
pool baselines).

Records live in a bounded ring (``collections.deque``): the newest
``capacity`` records are kept, and — like the tracer's trace-loss
reporting — the recorder counts what it *saw* separately from what it
*stored*, so a truncated history is never mistaken for a complete one
(``seen == stored + overwritten`` always holds).  Queries slower than
``slow_ms`` are additionally flagged and counted: the slow-query log
under heavy traffic.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Lifecycle outcomes a record can report.
STATUSES = ("ok", "rejected", "timeout", "error")


@dataclass(frozen=True)
class FlightRecord:
    """Everything one query experienced, end to end."""

    id: int
    session: str
    owner: str                     #: admission owner (tenant)
    query: str
    instance: str
    status: str                    #: one of :data:`STATUSES`
    arrival_unix: float            #: wall-clock arrival (epoch seconds)
    wait_ms: float                 #: admission wait
    run_ms: float                  #: execution after the grant
    total_ms: float                #: arrival to finish
    admission: dict = field(default_factory=dict)
    machine: dict = field(default_factory=dict)
    shape: str = ""
    algorithm: str = ""
    results: int = 0
    io: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    peak_mem: int = 0
    cache: dict | None = None      #: owner-attributed pool deltas
    slow: bool = False
    error: str | None = None

    def summary(self) -> dict:
        """The compact row ``GET /debug/queries`` lists."""
        return {"id": self.id, "session": self.session,
                "owner": self.owner, "status": self.status,
                "query": self.query, "shape": self.shape,
                "results": self.results,
                "io_total": self.io.get("total", 0),
                "wait_ms": self.wait_ms, "total_ms": self.total_ms,
                "slow": self.slow}

    def as_dict(self) -> dict:
        """The full record ``GET /debug/queries/<id>`` returns."""
        out = {"id": self.id, "session": self.session,
               "owner": self.owner, "query": self.query,
               "instance": self.instance, "status": self.status,
               "arrival_unix": round(self.arrival_unix, 6),
               "wait_ms": self.wait_ms, "run_ms": self.run_ms,
               "total_ms": self.total_ms,
               "admission": dict(self.admission),
               "machine": dict(self.machine),
               "shape": self.shape, "algorithm": self.algorithm,
               "results": self.results, "io": dict(self.io),
               "phases": dict(self.phases), "peak_mem": self.peak_mem,
               "slow": self.slow}
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        if self.error is not None:
            out["error"] = self.error
        return out


class FlightRecorder:
    """Bounded, thread-safe ring of the newest query lifecycle records.

    ``slow_ms`` is the slow-query threshold: records whose ``total_ms``
    meets it are flagged ``slow`` and counted (``stats()["slow"]``).
    ``clock`` is injectable for tests.
    """

    def __init__(self, capacity: int = 256,
                 slow_ms: float | None = None, *,
                 clock=time.time) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.clock = clock
        self._records: deque[FlightRecord] = deque(maxlen=capacity)  # em-guarded-by: _lock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.seen = 0  # em-guarded-by: _lock
        self.slow_count = 0  # em-guarded-by: _lock

    # -- recording -----------------------------------------------------

    def record(self, **fields) -> FlightRecord:
        """Build, number, and store one record; returns it.

        Accepts every :class:`FlightRecord` field except ``id`` and
        ``slow`` (assigned here).  Thread-safe; called by sessions on
        arbitrary threads.
        """
        with self._lock:
            slow = (self.slow_ms is not None
                    and fields.get("total_ms", 0.0) >= self.slow_ms)
            rec = FlightRecord(id=next(self._ids), slow=slow, **fields)
            self._records.append(rec)
            self.seen += 1
            if slow:
                self.slow_count += 1
            return rec

    # -- inspection ----------------------------------------------------

    @property
    def stored(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def overwritten(self) -> int:
        """Records the ring has dropped to make room (loss honesty)."""
        with self._lock:
            return self.seen - len(self._records)

    def records(self, n: int | None = None, *,
                slow_only: bool = False) -> list[FlightRecord]:
        """The newest ``n`` stored records, newest first."""
        with self._lock:
            out = list(self._records)
        out.reverse()
        if slow_only:
            out = [r for r in out if r.slow]
        return out if n is None else out[:max(0, n)]

    def get(self, record_id: int) -> FlightRecord | None:
        with self._lock:
            for rec in self._records:
                if rec.id == record_id:
                    return rec
        return None

    def stats(self) -> dict[str, object]:
        """Ring accounting: what was seen vs what is still readable."""
        with self._lock:
            stored = len(self._records)
            return {"capacity": self.capacity, "seen": self.seen,
                    "stored": stored,
                    "overwritten": self.seen - stored,
                    "slow_ms": self.slow_ms, "slow": self.slow_count}

    def __len__(self) -> int:
        return self.stored

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FlightRecorder(seen={self.seen}, "
                f"stored={self.stored}, capacity={self.capacity})")
