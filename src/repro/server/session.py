"""One client's connection: parse → classify → plan → execute, isolated.

A :class:`Session` owns its own :class:`~repro.em.device.Device` per
``(M, B)`` machine shape, so its :class:`~repro.em.stats.IOStats`,
phase attribution and memory gauge are *its own*: the counters a query
reports through a session are byte-identical to a solo ``repro run`` of
the same query (asserted against the pinned ``BENCH_table1.json`` in
``tests/test_server.py``).  What the service shares across sessions —
catalog rows, pool frames, the admission budget — never shows up in a
session's counters except as cache hits it genuinely earned.

Per query the session:

1. parses the text (or accepts a ready :class:`JoinQuery`) and checks
   it against the catalog entry's layouts;
2. declares its planner-estimated memory need to the admission
   controller and waits for a grant;
3. materializes the instance onto its device (cached per catalog
   generation — uncharged, inputs pre-exist in the model);
4. runs :func:`repro.core.planner.execute` and, when pooled, retires
   the query's working set (flush + drop of private frames);
5. releases the grant and reports a :class:`QueryResult` built from
   counter deltas, so a long-lived session reports each query as if it
   were the device's first.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.emit import CollectingEmitter, CountingEmitter
from repro.core.planner import estimate_memory_need, execute
from repro.data.instance import Instance
from repro.query.hypergraph import JoinQuery
from repro.query.parse import format_query, parse_query_and_layouts
from repro.server.admission import AdmissionRejected, AdmissionTimeout
from repro.server.pool import shared_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device
    from repro.server.catalog import CatalogEntry
    from repro.server.pool import PoolView
    from repro.server.service import QueryService

_UNSET = object()


class SessionClosed(RuntimeError):
    """The session was closed; open a new one."""


@dataclass(frozen=True)
class QueryResult:
    """Everything one query did, in solo-run-comparable units."""

    query: str
    instance: str
    session: str
    shape: str
    algorithm: str
    results: int
    io: dict
    phases: dict
    peak_mem: int
    machine: dict
    admission: dict
    cache: dict | None = None
    wall_s: float = 0.0
    rows: list | None = field(default=None, repr=False)
    #: id of this query's flight record (None with recording off).
    flight_id: int | None = None

    def as_dict(self) -> dict:
        out = {"query": self.query, "instance": self.instance,
               "session": self.session, "shape": self.shape,
               "algorithm": self.algorithm, "results": self.results,
               "io": self.io, "phases": self.phases,
               "peak_mem": self.peak_mem, "machine": self.machine,
               "admission": self.admission,
               "wall_ms": round(self.wall_s * 1e3, 3)}
        if self.cache is not None:
            out["cache"] = self.cache
        if self.flight_id is not None:
            out["flight_id"] = self.flight_id
        if self.rows is not None:
            out["rows"] = [{edge: list(t) for edge, t in r.items()}
                           for r in self.rows]
        return out


class Session:
    """A named connection to a :class:`~repro.server.service.
    QueryService`.  Queries within one session run serially (the
    session lock); concurrency comes from many sessions."""

    def __init__(self, service: "QueryService", name: str, *,
                 tracer=None) -> None:
        self._service = service
        self.name = name
        self._tracer = tracer
        # em-lock: coarse -- held across admission waits and device
        # charges by design: queries within one session run serially.
        self._lock = threading.Lock()
        self._devices: dict[tuple[int, int], "Device"] = {}  # em-guarded-by: _lock
        self._views: dict[tuple[int, int], "PoolView"] = {}  # em-guarded-by: _lock
        # (instance, generation, M, B) -> materialized Instance
        self._instances: dict[tuple[str, int, int, int], Instance] = {}  # em-guarded-by: _lock
        self._pinned: list[tuple[object, object, int]] = []  # em-guarded-by: _lock
        self.queries = 0  # em-guarded-by: _lock
        self.closed = False  # em-guarded-by: _lock

    # -- the query path ------------------------------------------------

    def execute(self, query: "JoinQuery | str", *,
                instance: str = "default", M: int | None = None,
                B: int | None = None, collect: bool = False,
                reduce_first: bool = True, timeout: object = _UNSET,
                tenant: str | None = None) -> QueryResult:
        """Run one query; blocks on the session lock and on admission.

        ``tenant`` names the admission owner for quota accounting; it
        defaults to the session name, so one-shot HTTP sessions can
        still share a tenant's quota by declaring it explicitly.
        """
        with self._lock:
            if self.closed:
                raise SessionClosed(f"session {self.name!r} is closed")
            svc = self._service
            flight = svc.flight
            owner = self.name if tenant is None else tenant
            arrival = time.time() if flight is not None else 0.0
            t0 = time.perf_counter()
            if isinstance(query, str):
                text = query
                q, layouts = parse_query_and_layouts(text)
            else:
                q, layouts = query, None
                text = format_query(q)
            M = svc.default_query_M if M is None else M
            B = svc.B if B is None else B
            entry = svc.catalog.acquire(instance)
            try:
                self._check_layouts(q, layouts, entry)
                need = estimate_memory_need(q, M=M, B=B)
                depth = svc.admission.queue_depth
                wait0 = time.perf_counter()
                try:
                    if timeout is _UNSET:  # defer to controller default
                        grant = svc.admission.acquire(need, owner=owner)
                    else:
                        grant = svc.admission.acquire(
                            need, owner=owner, timeout=timeout)
                except AdmissionRejected as exc:
                    self._record_flight(
                        svc, owner=owner, text=text, instance=instance,
                        status="rejected", arrival=arrival, t0=t0,
                        wait0=wait0, M=M, B=B, need=need, depth=depth,
                        error=str(exc), exc=exc)
                    raise
                except AdmissionTimeout as exc:
                    self._record_flight(
                        svc, owner=owner, text=text, instance=instance,
                        status="timeout", arrival=arrival, t0=t0,
                        wait0=wait0, M=M, B=B, need=need, depth=depth,
                        error=str(exc), exc=exc)
                    raise
                wait_s = time.perf_counter() - wait0
                try:
                    try:
                        result = self._run(q, text, entry, instance, M,
                                           B, collect, reduce_first)
                    except Exception as exc:
                        self._record_flight(
                            svc, owner=owner, text=text,
                            instance=instance, status="error",
                            arrival=arrival, t0=t0, wait0=wait0, M=M,
                            B=B, need=need, depth=depth,
                            outcome=("granted" if grant.immediate
                                     else "queued"),
                            wait_s=wait_s, error=str(exc), exc=exc)
                        raise
                finally:
                    svc.admission.release(grant)
            finally:
                svc.catalog.release(entry)
            self.queries += 1
            admission = {"need": need,
                         "wait_ms": round(wait_s * 1e3, 3),
                         "outcome": ("granted" if grant.immediate
                                     else "queued"),
                         "queue_depth_at_arrival": depth}
            quota = svc.admission.quota_state(owner)
            if quota is not None:
                admission["quota"] = quota
            result = dataclasses.replace(
                result, wall_s=time.perf_counter() - t0,
                admission=admission)
            if flight is not None:
                rec = flight.record(
                    session=self.name, owner=owner, query=text,
                    instance=instance, status="ok",
                    arrival_unix=arrival,
                    wait_ms=admission["wait_ms"],
                    run_ms=round((time.perf_counter() - wait0 - wait_s)
                                 * 1e3, 3),
                    total_ms=round(result.wall_s * 1e3, 3),
                    admission=admission, machine=result.machine,
                    shape=result.shape, algorithm=result.algorithm,
                    results=result.results, io=result.io,
                    phases=result.phases, peak_mem=result.peak_mem,
                    cache=result.cache)
                result = dataclasses.replace(result, flight_id=rec.id)
            svc._observe(result)
            return result

    def _record_flight(self, svc: "QueryService", *, owner: str,
                       text: str, instance: str, status: str,
                       arrival: float, t0: float, wait0: float,
                       M: int, B: int, need: int, depth: int,
                       outcome: str | None = None, wait_s: float = 0.0,
                       error: str | None = None,
                       exc: BaseException | None = None) -> None:
        """Record a query that never produced a :class:`QueryResult`
        (admission failure or execution error)."""
        flight = svc.flight
        if flight is None:
            return
        if exc is not None:
            # Batch workers consult this so a failure the session has
            # already recorded is not recorded a second time.
            exc._flight_recorded = True  # type: ignore[attr-defined]
        now = time.perf_counter()
        if status in ("rejected", "timeout"):
            wait_s = now - wait0
            outcome = status
        admission = {"need": need,
                     "wait_ms": round(wait_s * 1e3, 3),
                     "outcome": outcome,
                     "queue_depth_at_arrival": depth}
        quota = svc.admission.quota_state(owner)
        if quota is not None:
            admission["quota"] = quota
        flight.record(
            session=self.name, owner=owner, query=text,
            instance=instance, status=status, arrival_unix=arrival,
            wait_ms=admission["wait_ms"],
            run_ms=round(max(0.0, now - wait0 - wait_s) * 1e3, 3),
            total_ms=round((now - t0) * 1e3, 3), admission=admission,
            machine={"M": M, "B": B}, error=error)

    def _run(self, q: JoinQuery, text: str,  # em-holds: _lock
             entry: "CatalogEntry", instance: str, M: int, B: int,
             collect: bool, reduce_first: bool) -> QueryResult:
        device = self._device(M, B)
        inst = self._materialize(entry, device, instance)
        view = self._views.get((M, B))
        # Per-query isolation on a long-lived device: zero the phase and
        # memory trackers (query-scoped by definition) and diff the
        # monotone I/O counters against a snapshot.  reset_stats() is
        # deliberately NOT used: it would wipe the service-shared
        # metrics registry and any pooled residency mid-flight.
        device.phases.reset()
        device.memory.reset()
        before = device.stats.snapshot()
        emitter = CollectingEmitter() if collect else CountingEmitter()
        report = execute(q, inst, emitter, reduce_first=reduce_first)
        if view is not None:
            with device.phases.phase("pool-flush"):
                view.end_query()
        delta = device.stats.delta_since(before)
        cache = delta.cache.as_dict() if view is not None else None
        return QueryResult(
            query=text, instance=instance, session=self.name,
            shape=report.shape, algorithm=report.algorithm,
            results=emitter.count,
            io={"reads": delta.reads, "writes": delta.writes,
                "total": delta.reads + delta.writes,
                "reduce": {"reads": report.reduce_reads,
                           "writes": report.reduce_writes},
                "join": {"reads": report.reads, "writes": report.writes}},
            phases=device.phases.report(),
            peak_mem=device.memory.peak,
            machine={"M": M, "B": B},
            admission={},
            cache=cache,
            rows=emitter.results if collect else None)

    # -- pinning hot relations ----------------------------------------

    def pin_relation(self, relation: str, *, instance: str = "default",
                     M: int | None = None,
                     B: int | None = None) -> int:
        """Pin every page of a base relation into the shared pool.

        Faulting the pages in charges this session's counters (honest
        I/O); afterwards the pages cannot be evicted until
        :meth:`unpin_relation` or session close.  Returns the number of
        pages pinned.  Requires the service to run with a shared pool.
        """
        with self._lock:
            if self.closed:
                raise SessionClosed(f"session {self.name!r} is closed")
            svc = self._service
            M = svc.default_query_M if M is None else M
            B = svc.B if B is None else B
            device = self._device(M, B)
            view = self._views.get((M, B))
            if view is None:
                raise RuntimeError(
                    "pin_relation needs a shared pool "
                    "(service started with pool_frames=0)")
            entry = svc.catalog.acquire(instance)
            try:
                inst = self._materialize(entry, device, instance)
                segment = inst[relation].data
                f = segment.file
                pages = segment.n_pages
                for page in range(pages):
                    view.pin(f, page)
                    self._pinned.append((view, f, page))
                return pages
            finally:
                svc.catalog.release(entry)

    def unpin_relation(self, relation: str, *,
                       instance: str = "default") -> int:
        """Release this session's pins on a relation's pages."""
        with self._lock:
            remaining, dropped = [], 0
            for view, f, page in self._pinned:
                name = getattr(f, "name", None)
                if name == relation:
                    view.unpin(f, page)
                    dropped += 1
                else:
                    remaining.append((view, f, page))
            self._pinned = remaining
            return dropped

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Flush and drop this session's pool footprint; its pins only."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._pinned.clear()
            for view in self._views.values():
                view.close()  # releases exactly this session's pins
            for device in self._devices.values():
                device.detach_pool()
            self._views.clear()
            self._devices.clear()
            self._instances.clear()

    def stats(self) -> dict[str, object]:
        return {"name": self.name, "queries": self.queries,
                "closed": self.closed,
                "devices": [{"M": M, "B": B,
                             "io": dev.stats.total}
                            for (M, B), dev in self._devices.items()],
                "cached_instances": len(self._instances)}

    # -- internals -----------------------------------------------------

    def _device(self, M: int, B: int) -> "Device":  # em-holds: _lock
        from repro.em.device import Device

        device = self._devices.get((M, B))
        if device is None:
            # No shared registry on session devices: instrument updates
            # from algorithm code would race across session threads.
            # Service-level aggregation happens in QueryService._observe
            # under its own lock.
            device = Device(M=M, B=B)
            if self._tracer is not None:
                device.attach_tracer(self._tracer)
            shared = self._service.pool
            if shared is not None and shared.B == B:
                view = shared.view(device, owner=self.name)
                device.attach_pool(view)
                self._views[(M, B)] = view
            self._devices[(M, B)] = device
        return device

    def _materialize(self, entry: "CatalogEntry",  # em-holds: _lock
                     device: "Device", instance: str) -> Instance:
        key = (instance, entry.generation, device.M, device.B)
        inst = self._instances.get(key)
        if inst is None:
            inst = Instance.from_dicts(device, entry.layouts, entry.rows)
            view = self._views.get((device.M, device.B))
            if view is not None:
                for rel in entry.layouts:
                    view.share(
                        inst[rel].data.file,
                        shared_label(instance, entry.generation,
                                     device.B, rel))
            self._instances[key] = inst
        return inst

    @staticmethod
    def _check_layouts(q: JoinQuery,
                       layouts: dict[str, tuple[str, ...]] | None,
                       entry: "CatalogEntry") -> None:
        from repro.server.catalog import CatalogError
        for rel in q.edge_names:
            have = entry.layouts.get(rel)
            if have is None:
                raise CatalogError(
                    f"query uses relation {rel!r} but instance "
                    f"{entry.name!r} holds {sorted(entry.layouts)}")
            want = (layouts[rel] if layouts is not None
                    else q.edges[rel])
            if set(want) != set(have):
                raise CatalogError(
                    f"relation {rel!r}: query names attributes "
                    f"{sorted(want)} but the loaded layout is {have}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Session({self.name!r}, queries={self.queries}, "
                f"closed={self.closed})")
