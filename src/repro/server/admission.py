"""Admission control: concurrent queries under one global budget ``M``.

The paper's algorithms each assume a private memory of ``M`` tuples.  A
service multiplexing concurrent queries over one machine must keep that
promise *globally*: at every instant the sum of memory granted to
in-flight queries stays within the configured budget.  Queries declare
their planner-estimated need (:func:`repro.core.planner.
estimate_memory_need`) and the controller grants, queues, or rejects:

* ``need > budget`` — :class:`AdmissionRejected`: the query can never
  run on this machine (the paper would say ``M`` is too small for it);
* budget available and the fairness policy agrees — granted at once;
* otherwise — queued; granted when releases free enough budget, or
  :class:`AdmissionTimeout` after the caller's patience runs out.

Two queue policies:

* ``"fifo"`` — strict arrival order.  No starvation, but a large query
  at the head blocks smaller ones that would fit behind it (head-of-line
  blocking, accepted for the no-starvation guarantee);
* ``"smallest-first"`` — minimum declared need first.  Maximal
  concurrency; may starve large queries under sustained small-query
  load.

Fairness is also **per-tenant**: a :class:`Quota` caps an owner's
concurrent queries (``max_inflight``) and/or its share of the budget
(``max_share``).  A quota-blocked waiter is *skipped*, not served —
one tenant at its cap never stalls the tenants queued behind it
(unlike budget-blocked fifo head-of-line, which is kept deliberately
for the no-starvation guarantee).

The controller is a plain monitor (one lock + condition); grants are
tickets so a double release is caught instead of silently inflating the
budget.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

POLICIES = ("fifo", "smallest-first")

_UNSET = object()


class AdmissionError(RuntimeError):
    """Base class for admission failures."""


class AdmissionRejected(AdmissionError):
    """The declared need exceeds the global budget outright."""


class AdmissionTimeout(AdmissionError):
    """The queue did not drain within the caller's timeout."""


@dataclass(frozen=True)
class Grant:
    """A live reservation of ``amount`` tuples of the global budget."""

    amount: int
    ticket: int
    owner: str | None = None
    #: False when the grant came out of the wait queue (the caller's
    #: admission outcome was "queued", not "granted").
    immediate: bool = True


@dataclass(frozen=True)
class Quota:
    """Per-owner fairness limits (either field may be ``None``)."""

    max_inflight: int | None = None   #: concurrent grants for the owner
    max_share: float | None = None    #: fraction of the budget, (0, 1]

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        if (self.max_share is not None
                and not 0.0 < self.max_share <= 1.0):
            raise ValueError(
                f"max_share must be in (0, 1], got {self.max_share}")

    def as_dict(self) -> dict:
        return {"max_inflight": self.max_inflight,
                "max_share": self.max_share}


class AdmissionController:
    """Grants shares of one memory budget to concurrent queries."""

    def __init__(self, budget: int, *, policy: str = "fifo",
                 default_timeout: float | None = 30.0,
                 default_quota: Quota | None = None) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; pick from {POLICIES}")
        self.budget = budget
        self.policy = policy
        self.default_timeout = default_timeout
        self.default_quota = default_quota
        self._cond = threading.Condition()
        self._granted = 0  # em-guarded-by: _cond
        self._active: set[int] = set()  # em-guarded-by: _cond
        # (need, ticket, owner); ticket is unique so tuple comparison
        # (smallest-first's min()) never reaches the owner element.
        self._queue: list[tuple[int, int, str | None]] = []  # em-guarded-by: _cond
        self._tickets = itertools.count(1)
        self._quotas: dict[str, Quota] = {}  # em-guarded-by: _cond
        self._owner_inflight: dict[str, int] = {}  # em-guarded-by: _cond
        self._owner_granted: dict[str, int] = {}  # em-guarded-by: _cond
        self.stats = {"admitted": 0, "rejected": 0,  # em-guarded-by: _cond
                      "timeouts": 0, "released": 0, "peak_granted": 0,
                      "peak_queue": 0, "quota_rejections": 0}

    # -- introspection -------------------------------------------------

    @property
    def granted(self) -> int:
        """Budget currently handed out, in tuples."""
        with self._cond:
            return self._granted

    @property
    def available(self) -> int:
        with self._cond:
            return self.budget - self._granted

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def snapshot(self) -> dict[str, object]:
        with self._cond:
            doc = {"budget": self.budget, "policy": self.policy,
                   "granted": self._granted,
                   "available": self.budget - self._granted,
                   "in_flight": len(self._active),
                   "queue_depth": len(self._queue), **self.stats}
            owners = sorted(set(self._quotas) | set(self._owner_inflight))
            if owners or self.default_quota is not None:
                doc["quotas"] = {o: self._quota_state_locked(o)
                                 for o in owners}
                if self.default_quota is not None:
                    doc["default_quota"] = self.default_quota.as_dict()
            return doc

    # -- per-owner quotas ----------------------------------------------

    def set_quota(self, owner: str, *, max_inflight: int | None = None,
                  max_share: float | None = None) -> Quota | None:
        """Install (or, with both limits ``None``, clear) an owner's
        quota.  Takes effect for the owner's *next* acquire."""
        with self._cond:
            if max_inflight is None and max_share is None:
                self._quotas.pop(owner, None)
                self._cond.notify_all()  # clearing a cap can unblock
                return None
            quota = Quota(max_inflight=max_inflight, max_share=max_share)
            self._quotas[owner] = quota
            return quota

    def quota_for(self, owner: str | None) -> Quota | None:
        """The quota an acquire by ``owner`` is checked against."""
        if owner is None:
            return None
        with self._cond:
            return self._quotas.get(owner, self.default_quota)

    def quota_state(self, owner: str | None) -> dict | None:
        """Live usage vs limits for one owner; ``None`` when unlimited
        and idle (nothing worth recording)."""
        if owner is None:
            return None
        with self._cond:
            if (owner not in self._quotas and self.default_quota is None
                    and owner not in self._owner_inflight):
                return None
            return self._quota_state_locked(owner)

    def _quota_state_locked(self, owner: str) -> dict:  # em-holds: _cond
        state: dict = {"inflight": self._owner_inflight.get(owner, 0),
                       "granted": self._owner_granted.get(owner, 0)}
        quota = self._quotas.get(owner, self.default_quota)
        if quota is not None:
            state.update(quota.as_dict())
        return state

    # -- the protocol --------------------------------------------------

    def try_acquire(self, need: int, *,
                    owner: str | None = None) -> Grant | None:
        """Non-blocking: a grant if budget, queue order and quota allow,
        else ``None`` (never queues)."""
        self._validate(need, owner)
        with self._cond:
            if (self._queue or self._granted + need > self.budget
                    or not self._quota_allows(owner, need)):
                return None
            return self._grant(need, owner=owner)

    def acquire(self, need: int, *, timeout: object = _UNSET,
                owner: str | None = None) -> Grant:
        """Block until ``need`` tuples are granted, or fail.

        ``timeout=None`` waits forever; the default is the controller's
        ``default_timeout``.  ``timeout=0`` degrades to the non-blocking
        fast path (but raises instead of returning ``None``).
        """
        self._validate(need, owner)
        patience = self.default_timeout if timeout is _UNSET else timeout
        deadline = (None if patience is None
                    else time.monotonic() + float(patience))
        entry = (need, next(self._tickets), owner)
        immediate = True
        with self._cond:
            self._queue.append(entry)
            if len(self._queue) > self.stats["peak_queue"]:
                self.stats["peak_queue"] = len(self._queue)
            try:
                while True:
                    if (self._my_turn(entry)
                            and self._granted + need <= self.budget):
                        self._queue.remove(entry)
                        return self._grant(need, ticket=entry[1],
                                           owner=owner,
                                           immediate=immediate)
                    immediate = False
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        self._queue.remove(entry)
                        self.stats["timeouts"] += 1
                        # Our departure may unblock whoever queued behind.
                        self._cond.notify_all()
                        raise AdmissionTimeout(
                            f"no {need} tuples freed within {patience}s "
                            f"(granted {self._granted}/{self.budget}, "
                            f"queue depth {len(self._queue)})")
                    self._cond.wait(remaining)
            except BaseException:
                if entry in self._queue:  # interrupted while waiting
                    self._queue.remove(entry)
                    self._cond.notify_all()
                raise

    def release(self, grant: Grant) -> None:
        """Return a grant's budget; wakes every queued waiter."""
        with self._cond:
            if grant.ticket not in self._active:
                raise AdmissionError(
                    f"release of inactive grant {grant} (double release?)")
            self._active.remove(grant.ticket)
            self._granted -= grant.amount
            if grant.owner is not None:
                left = self._owner_inflight.get(grant.owner, 0) - 1
                if left > 0:
                    self._owner_inflight[grant.owner] = left
                    self._owner_granted[grant.owner] -= grant.amount
                else:
                    self._owner_inflight.pop(grant.owner, None)
                    self._owner_granted.pop(grant.owner, None)
            self.stats["released"] += 1
            self._cond.notify_all()

    @contextmanager
    def admit(self, need: int, *, timeout: object = _UNSET,
              owner: str | None = None):
        """``with admission.admit(need):`` — acquire and always release."""
        grant = self.acquire(need, timeout=timeout, owner=owner)
        try:
            yield grant
        finally:
            self.release(grant)

    # -- internals -----------------------------------------------------

    def _validate(self, need: int, owner: str | None = None) -> None:
        if need < 0:
            raise ValueError(f"memory need must be >= 0, got {need}")
        if need > self.budget:
            with self._cond:
                self.stats["rejected"] += 1
            raise AdmissionRejected(
                f"query needs {need} tuples but the global budget is "
                f"{self.budget}; no release can ever satisfy it")
        quota = self.quota_for(owner)
        if (quota is not None and quota.max_share is not None
                and need > quota.max_share * self.budget):
            with self._cond:
                self.stats["rejected"] += 1
                self.stats["quota_rejections"] += 1
            raise AdmissionRejected(
                f"query needs {need} tuples but owner {owner!r} is "
                f"capped at {quota.max_share:g} of the {self.budget}-"
                f"tuple budget; no release can ever satisfy it")

    def _quota_allows(self, owner: str | None,  # em-holds: _cond
                      need: int) -> bool:
        if owner is None:
            return True
        quota = self._quotas.get(owner, self.default_quota)
        if quota is None:
            return True
        if (quota.max_inflight is not None
                and self._owner_inflight.get(owner, 0)
                >= quota.max_inflight):
            return False
        if (quota.max_share is not None
                and self._owner_granted.get(owner, 0) + need
                > quota.max_share * self.budget):
            return False
        return True

    def _my_turn(self,  # em-holds: _cond
                 entry: tuple[int, int, str | None]) -> bool:
        # Quota-blocked waiters are invisible to the ordering: a tenant
        # at its cap never stalls the tenants queued behind it.
        eligible = [e for e in self._queue
                    if self._quota_allows(e[2], e[0])]
        if not eligible:
            return False
        if self.policy == "fifo":
            return eligible[0] is entry
        return min(eligible) == entry  # (need, ticket) natural order

    def _grant(self, need: int,  # em-holds: _cond
               ticket: int | None = None,
               owner: str | None = None,
               immediate: bool = True) -> Grant:
        grant = Grant(amount=need,
                      ticket=next(self._tickets) if ticket is None
                      else ticket, owner=owner, immediate=immediate)
        self._granted += need
        self._active.add(grant.ticket)
        if owner is not None:
            self._owner_inflight[owner] = (
                self._owner_inflight.get(owner, 0) + 1)
            self._owner_granted[owner] = (
                self._owner_granted.get(owner, 0) + need)
        self.stats["admitted"] += 1
        if self._granted > self.stats["peak_granted"]:
            self.stats["peak_granted"] = self._granted
        return grant

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AdmissionController(budget={self.budget}, "
                f"granted={self._granted}, queue={len(self._queue)})")
