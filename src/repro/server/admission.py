"""Admission control: concurrent queries under one global budget ``M``.

The paper's algorithms each assume a private memory of ``M`` tuples.  A
service multiplexing concurrent queries over one machine must keep that
promise *globally*: at every instant the sum of memory granted to
in-flight queries stays within the configured budget.  Queries declare
their planner-estimated need (:func:`repro.core.planner.
estimate_memory_need`) and the controller grants, queues, or rejects:

* ``need > budget`` — :class:`AdmissionRejected`: the query can never
  run on this machine (the paper would say ``M`` is too small for it);
* budget available and the fairness policy agrees — granted at once;
* otherwise — queued; granted when releases free enough budget, or
  :class:`AdmissionTimeout` after the caller's patience runs out.

Two queue policies:

* ``"fifo"`` — strict arrival order.  No starvation, but a large query
  at the head blocks smaller ones that would fit behind it (head-of-line
  blocking, accepted for the no-starvation guarantee);
* ``"smallest-first"`` — minimum declared need first.  Maximal
  concurrency; may starve large queries under sustained small-query
  load.

The controller is a plain monitor (one lock + condition); grants are
tickets so a double release is caught instead of silently inflating the
budget.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

POLICIES = ("fifo", "smallest-first")

_UNSET = object()


class AdmissionError(RuntimeError):
    """Base class for admission failures."""


class AdmissionRejected(AdmissionError):
    """The declared need exceeds the global budget outright."""


class AdmissionTimeout(AdmissionError):
    """The queue did not drain within the caller's timeout."""


@dataclass(frozen=True)
class Grant:
    """A live reservation of ``amount`` tuples of the global budget."""

    amount: int
    ticket: int


class AdmissionController:
    """Grants shares of one memory budget to concurrent queries."""

    def __init__(self, budget: int, *, policy: str = "fifo",
                 default_timeout: float | None = 30.0) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; pick from {POLICIES}")
        self.budget = budget
        self.policy = policy
        self.default_timeout = default_timeout
        self._cond = threading.Condition()
        self._granted = 0
        self._active: set[int] = set()
        self._queue: list[tuple[int, int]] = []  # (need, ticket)
        self._tickets = itertools.count(1)
        self.stats = {"admitted": 0, "rejected": 0, "timeouts": 0,
                      "released": 0, "peak_granted": 0, "peak_queue": 0}

    # -- introspection -------------------------------------------------

    @property
    def granted(self) -> int:
        """Budget currently handed out, in tuples."""
        return self._granted

    @property
    def available(self) -> int:
        return self.budget - self._granted

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict[str, object]:
        with self._cond:
            return {"budget": self.budget, "policy": self.policy,
                    "granted": self._granted,
                    "available": self.budget - self._granted,
                    "in_flight": len(self._active),
                    "queue_depth": len(self._queue), **self.stats}

    # -- the protocol --------------------------------------------------

    def try_acquire(self, need: int) -> Grant | None:
        """Non-blocking: a grant if budget and queue order allow, else
        ``None`` (never queues)."""
        self._validate(need)
        with self._cond:
            if self._queue or self._granted + need > self.budget:
                return None
            return self._grant(need)

    def acquire(self, need: int, *, timeout: object = _UNSET) -> Grant:
        """Block until ``need`` tuples are granted, or fail.

        ``timeout=None`` waits forever; the default is the controller's
        ``default_timeout``.  ``timeout=0`` degrades to the non-blocking
        fast path (but raises instead of returning ``None``).
        """
        self._validate(need)
        patience = self.default_timeout if timeout is _UNSET else timeout
        deadline = (None if patience is None
                    else time.monotonic() + float(patience))
        entry = (need, next(self._tickets))
        with self._cond:
            self._queue.append(entry)
            if len(self._queue) > self.stats["peak_queue"]:
                self.stats["peak_queue"] = len(self._queue)
            try:
                while True:
                    if (self._my_turn(entry)
                            and self._granted + need <= self.budget):
                        self._queue.remove(entry)
                        return self._grant(need, ticket=entry[1])
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        self._queue.remove(entry)
                        self.stats["timeouts"] += 1
                        # Our departure may unblock whoever queued behind.
                        self._cond.notify_all()
                        raise AdmissionTimeout(
                            f"no {need} tuples freed within {patience}s "
                            f"(granted {self._granted}/{self.budget}, "
                            f"queue depth {len(self._queue)})")
                    self._cond.wait(remaining)
            except BaseException:
                if entry in self._queue:  # interrupted while waiting
                    self._queue.remove(entry)
                    self._cond.notify_all()
                raise

    def release(self, grant: Grant) -> None:
        """Return a grant's budget; wakes every queued waiter."""
        with self._cond:
            if grant.ticket not in self._active:
                raise AdmissionError(
                    f"release of inactive grant {grant} (double release?)")
            self._active.remove(grant.ticket)
            self._granted -= grant.amount
            self.stats["released"] += 1
            self._cond.notify_all()

    @contextmanager
    def admit(self, need: int, *, timeout: object = _UNSET):
        """``with admission.admit(need):`` — acquire and always release."""
        grant = self.acquire(need, timeout=timeout)
        try:
            yield grant
        finally:
            self.release(grant)

    # -- internals -----------------------------------------------------

    def _validate(self, need: int) -> None:
        if need < 0:
            raise ValueError(f"memory need must be >= 0, got {need}")
        if need > self.budget:
            with self._cond:
                self.stats["rejected"] += 1
            raise AdmissionRejected(
                f"query needs {need} tuples but the global budget is "
                f"{self.budget}; no release can ever satisfy it")

    def _my_turn(self, entry: tuple[int, int]) -> bool:
        if self.policy == "fifo":
            return self._queue[0] is entry
        return min(self._queue) == entry  # (need, ticket) natural order

    def _grant(self, need: int, ticket: int | None = None) -> Grant:
        grant = Grant(amount=need,
                      ticket=next(self._tickets) if ticket is None
                      else ticket)
        self._granted += need
        self._active.add(grant.ticket)
        self.stats["admitted"] += 1
        if self._granted > self.stats["peak_granted"]:
            self.stats["peak_granted"] = self._granted
        return grant

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AdmissionController(budget={self.budget}, "
                f"granted={self._granted}, queue={len(self._queue)})")
