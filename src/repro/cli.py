"""Command-line interface: run and analyze joins from the shell.

Six subcommands::

    python -m repro run --query "R(a,b), S(b,c)" \\
        --table R=follows.csv --table S=lives.csv -M 1024 -B 64 \\
        [--out results.csv] [--no-reduce] [--json] \\
        [--pool-frames 16 --pool-policy lru] \\
        [--trace out.jsonl] [--trace-summary] \\
        [--profile out.json] [--metrics [--metrics-out out.prom]]

    python -m repro analyze --query "e1(v1,v2)[100], e2(v2,v3)[50]" \\
        -M 1024 -B 64

    python -m repro explain --query "R(a,b), S(b,c)" \\
        --table R=follows.csv --table S=lives.csv -M 1024 -B 64 \\
        [--fitted benchmarks/BENCH_fitted.json] [--fit-live] \\
        [--no-reduce] [--json]

    python -m repro fit two_relations line3 [--all] \\
        [--points 64 128 256] [-M 16 -B 4] [--eps 0.25] [--json] \\
        [--profile out.json] [--write-fitted PATH] \\
        [--check-fitted PATH]

    python -m repro lint [paths ...] [--format human|json] \\
        [--baseline lint-baseline.json] [--write-baseline] \\
        [--list-rules] [--effects signatures.json] \\
        [--check-effects effects-baseline.json] \\
        [--write-effects-baseline effects-baseline.json] \\
        [--locks lock_graph.json] \\
        [--check-locks locks-baseline.json] \\
        [--write-locks-baseline locks-baseline.json] \\
        [--costs cost_table.json] \\
        [--check-costs costs-baseline.json] \\
        [--write-costs-baseline costs-baseline.json]

    python -m repro serve --table R=follows.csv --table S=lives.csv \\
        [-M 4096 -B 64] [--host 127.0.0.1 --port 8707] \\
        [--pool-frames 256 --pool-policy lru --max-pin-share 0.5] \\
        [--admission-policy fifo --admission-timeout 30] \\
        [--instance default] [--workers 8] \\
        [--fitted benchmarks/BENCH_fitted.json] \\
        [--flight-records 256] [--slow-query-ms 100] \\
        [--quota alice=2] [--quota bob=4:0.5] [--default-quota 8]

``run`` loads the CSV tables, executes the planner, and reports the
results count, I/O bill, per-phase breakdown, and the optimality
certificate.  ``--pool-frames``/``--pool-policy`` opt into the buffer
pool (cache counters join the report); ``--trace`` attaches a
:class:`~repro.obs.Tracer` and exports the event stream as JSON Lines;
``--trace-summary`` reports the tracer's exact per-file/per-phase
rollups and works on its own (no ``--trace`` needed — summary without
the event file); ``--profile`` attaches a
:class:`~repro.obs.SpanProfiler` and writes a Chrome-trace/Perfetto
JSON profile; ``--metrics`` attaches a
:class:`~repro.obs.MetricsRegistry` (``--metrics-out`` also writes the
Prometheus text exposition); ``--json`` emits the whole report as one
JSON document so benchmarks and CI can scrape results without parsing
prose.  ``analyze`` is purely structural: shape, acyclicity, edge
cover / AGM bound, balance regime for lines, and the GenS branch
summary — no data needed (sizes come from the ``[n]`` annotations).
``explain`` runs the query like ``run`` and then reports **predicted
vs measured** I/O per phase: the prediction evaluates the query's
Table-1 bound terms at the actual relation sizes and machine, scaled
by the fitted constant from ``--fitted`` (the committed
``benchmarks/BENCH_fitted.json``) — ``--fit-live`` sweeps the
constants on the spot when no document exists yet.  ``fit`` sweeps
registered query classes against their Table 1 bounds, fits the
hidden constant and the log-log slope, and exits non-zero on a
complexity regression (slope > 1 + eps) — the CI hook next to the
pinned-counter baseline check; ``--write-fitted`` persists the
constants as the versioned document ``explain`` reads, and
``--check-fitted`` diffs a fresh sweep against the committed one
(exit 1 on drift — the CI gate that keeps predictions honest).  ``lint`` runs ``emlint``, the
AST-based model-discipline checker (see ``docs/model.md``): exit 0
means every byte of I/O in the tree is accounted through the charged
device API; exit 1 reports violations or stale baseline entries.
``--effects PATH`` additionally dumps the interprocedural
effect-signature table (the emflow fixpoint behind EM007–EM011) as a
versioned JSON document — the CI artifact next to the lint report;
``--check-effects`` diffs the live table against a committed archive
and fails when a function's effects changed without a matching
``# em-effects:`` declaration update (``--write-effects-baseline``
regenerates the archive).  ``--locks PATH`` dumps the emrace
lock-discipline document (thread roots, the lock inventory with
guarded fields, the lock-order graph, per-function thread/lock
signatures) behind EM012–EM016; ``--check-locks`` diffs it against
the committed ``locks-baseline.json`` and fails on cycles, guard
moves, strictness changes, or new lock-order edges
(``--write-locks-baseline`` regenerates it).  ``--costs PATH`` dumps
the emcost symbolic I/O-cost table (per-function derived bounds in
the paper's ``N``/``M``/``B``/``OUT`` vocabulary next to their
``# em-cost:`` declarations — the input the cost-based planner
consumes alongside the fitted constants) behind EM017–EM021;
``--check-costs`` diffs it against the committed
``costs-baseline.json`` and fails when a derived bound moved without
a declaration update (``--write-costs-baseline`` regenerates it).
All ``--check-*`` gates share one drift-report shape and also fail
on committed entries whose justification is still the ``TODO:
justify`` placeholder.  ``serve`` keeps a
:class:`~repro.server.QueryService` alive behind a small HTTP surface:
``POST /query`` (JSON in/out, optional sticky sessions), ``GET
/metrics`` (Prometheus text), ``/stats``, ``/catalog`` and
``/healthz``; ``-M`` is the *global* admission budget shared by all
concurrent queries (per-query machines come from the request), and
``--pool-frames`` turns on the shared cross-query buffer pool.
``--fitted`` arms ``POST /query?explain=1``; ``--flight-records`` /
``--slow-query-ms`` size the query flight recorder behind ``GET
/debug/queries``; ``--quota OWNER=INFLIGHT[:SHARE]`` (repeatable) and
``--default-quota INFLIGHT[:SHARE]`` cap per-tenant concurrency and
budget share.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import FIT_CLASSES, certify, fit_class
from repro.core import CollectingEmitter, execute
from repro.data.io import dump_results_csv, instance_from_csv
from repro.em.bufferpool import PoolConfig
from repro.em.device import Device
from repro.em.policies import POLICIES
from repro.lint import (RULES, Baseline, compact_cost_signatures,
                        compact_effect_signatures,
                        compact_lock_signatures,
                        compare_cost_signatures,
                        compare_effect_signatures,
                        compare_lock_signatures, lint_paths,
                        load_baseline, to_human, to_json, write_baseline)
from repro.obs import (MetricsRegistry, ProfiledEmitter, SpanProfiler,
                       Tracer, to_prometheus, write_chrome_trace)
from repro.query import (fractional_edge_cover, gens_all,
                         is_berge_acyclic)
from repro.query.parse import parse_query, parse_query_and_layouts
from repro.query.shapes import classify_shape, detect_line


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case I/O-optimal acyclic joins "
                    "(Hu & Yi, PODS 2016) on a simulated EM machine.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a join over CSV tables")
    run.add_argument("--query", required=True,
                     help="query text, e.g. 'R(a,b), S(b,c)'")
    run.add_argument("--table", action="append", default=[],
                     metavar="NAME=PATH",
                     help="CSV file per relation (repeatable)")
    run.add_argument("-M", type=int, default=1024,
                     help="memory size in tuples (default 1024)")
    run.add_argument("-B", type=int, default=64,
                     help="block size in tuples (default 64)")
    run.add_argument("--out", help="write results to this CSV")
    run.add_argument("--no-reduce", action="store_true",
                     help="skip the full reducer (input already reduced)")
    run.add_argument("--certificate", action="store_true",
                     help="also compute the optimality certificate "
                          "(expensive: joins in memory)")
    run.add_argument("--pool-frames", type=int, default=0, metavar="N",
                     help="enable the buffer pool with N page frames "
                          "(default 0 = off, paper-faithful accounting)")
    run.add_argument("--pool-policy", choices=sorted(POLICIES),
                     default="lru",
                     help="replacement policy for --pool-frames "
                          "(default lru)")
    run.add_argument("--json", action="store_true",
                     help="emit one JSON document instead of prose "
                          "(io, phases, memory peak, cache counters)")
    run.add_argument("--trace", metavar="PATH",
                     help="trace device events (reads, writes, cache, "
                          "phases, memory peaks) and export them as "
                          "JSON Lines to PATH")
    run.add_argument("--trace-summary", action="store_true",
                     help="report the tracer's exact per-file/per-phase "
                          "rollups; usable on its own (attaches a "
                          "tracer without writing an event file) or "
                          "next to --trace; adds a trace_summary "
                          "section under --json")
    run.add_argument("--trace-sample", type=int, default=1, metavar="K",
                     help="store every K-th I/O event in the trace "
                          "buffer (rollups stay exact; default 1)")
    run.add_argument("--trace-buffer", type=int, default=65536,
                     metavar="N",
                     help="ring-buffer capacity in events (oldest "
                          "events are overwritten; default 65536)")
    run.add_argument("--profile", metavar="PATH",
                     help="profile the run with hierarchical spans and "
                          "write a Chrome-trace/Perfetto JSON file to "
                          "PATH (adds a profile section under --json)")
    run.add_argument("--metrics", action="store_true",
                     help="collect counters/gauges/histograms from the "
                          "instrumented code paths (adds a metrics "
                          "section under --json)")
    run.add_argument("--metrics-out", metavar="PATH",
                     help="also write the metrics in the Prometheus "
                          "text exposition format (implies --metrics)")

    analyze = sub.add_parser("analyze",
                             help="structural analysis of a query")
    analyze.add_argument("--query", required=True,
                         help="query text with optional [size] suffixes")
    analyze.add_argument("-M", type=int, default=1024)
    analyze.add_argument("-B", type=int, default=64)

    explain = sub.add_parser(
        "explain", help="run a join and report predicted vs measured "
                        "I/O per phase")
    explain.add_argument("--query", required=True,
                         help="query text, e.g. 'R(a,b), S(b,c)'")
    explain.add_argument("--table", action="append", default=[],
                         metavar="NAME=PATH",
                         help="CSV file per relation (repeatable)")
    explain.add_argument("-M", type=int, default=1024,
                         help="memory size in tuples (default 1024)")
    explain.add_argument("-B", type=int, default=64,
                         help="block size in tuples (default 64)")
    explain.add_argument("--fitted", default="benchmarks/BENCH_fitted.json",
                         metavar="PATH",
                         help="fitted-constants document to predict "
                              "from (default benchmarks/"
                              "BENCH_fitted.json)")
    explain.add_argument("--fit-live", action="store_true",
                         help="no --fitted file needed: sweep and fit "
                              "the matched class on the spot (slower, "
                              "but always available)")
    explain.add_argument("--no-reduce", action="store_true",
                         help="skip the full reducer "
                              "(input already reduced)")
    explain.add_argument("--json", action="store_true",
                         help="emit the report as one JSON document")

    fit = sub.add_parser(
        "fit", help="fit hidden constants of the Table 1 bounds")
    fit.add_argument("classes", nargs="*", metavar="CLASS",
                     help="query classes to sweep and fit "
                          f"(from: {', '.join(sorted(FIT_CLASSES))})")
    fit.add_argument("--all", action="store_true",
                     help="sweep every registered class")
    fit.add_argument("--points", type=int, nargs="+", metavar="N",
                     help="instance sizes to sweep (default: the "
                          "class's registered sweep)")
    fit.add_argument("-M", type=int, default=None,
                     help="memory size in tuples (default: per class)")
    fit.add_argument("-B", type=int, default=None,
                     help="block size in tuples (default: per class)")
    fit.add_argument("--eps", type=float, default=0.25,
                     help="regression tolerance: flag when the fitted "
                          "log-log slope exceeds 1 + eps (default 0.25)")
    fit.add_argument("--json", action="store_true",
                     help="emit the fit results as one JSON document")
    fit.add_argument("--profile", metavar="PATH",
                     help="profile the sweep and write a Chrome-trace/"
                          "Perfetto JSON file to PATH")
    fit.add_argument("--write-fitted", metavar="PATH",
                     help="persist the fitted constants as the "
                          "versioned document 'repro explain' and the "
                          "service read (benchmarks/BENCH_fitted.json)")
    fit.add_argument("--check-fitted", metavar="PATH",
                     help="diff this sweep against the committed "
                          "fitted document at PATH; exit 1 on drift")

    lint = sub.add_parser(
        "lint", help="check the tree against the EM model discipline")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("human", "json"),
                      default="human",
                      help="report format (default human)")
    lint.add_argument("--baseline", metavar="PATH",
                      default="lint-baseline.json",
                      help="suppression baseline file (default "
                           "lint-baseline.json; missing file = empty)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline file entirely")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept every current finding into the "
                           "baseline file and exit 0 (fill in the "
                           "TODO justifications before committing)")
    lint.add_argument("--root", default=".",
                      help="anchor for repo-relative report paths "
                           "(default .)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule code with its summary "
                           "and rationale, then exit")
    lint.add_argument("--effects", metavar="PATH",
                      help="write the inferred per-function effect-"
                           "signature table (versioned JSON) to PATH, "
                           "or '-' for stdout")
    lint.add_argument("--check-effects", metavar="PATH",
                      help="diff the live effect signatures against the "
                           "committed archive at PATH; exit 1 when a "
                           "function's effects changed without a "
                           "matching '# em-effects:' declaration update")
    lint.add_argument("--locks", metavar="PATH",
                      help="dump the emrace lock-graph document "
                           "(locks, guarded fields, lock-order edges, "
                           "per-function thread/lock signatures) as "
                           "JSON to PATH ('-' for stdout)")
    lint.add_argument("--check-locks", metavar="PATH",
                      help="diff the live lock graph against a "
                           "committed baseline; fail on cycles, guard "
                           "moves, strictness changes, or new "
                           "lock-order edges")
    lint.add_argument("--write-locks-baseline", metavar="PATH",
                      help="write the compact lock signature archive "
                           "(the --check-locks input) to PATH and "
                           "continue")
    lint.add_argument("--write-effects-baseline", metavar="PATH",
                      help="write the compact effect-signature archive "
                           "(the --check-effects input) to PATH and "
                           "exit 0")
    lint.add_argument("--costs", metavar="PATH",
                      help="dump the emcost symbolic I/O-cost table "
                           "(per-function derived bounds and em-cost "
                           "declarations — the planner feed) as JSON "
                           "to PATH ('-' for stdout)")
    lint.add_argument("--check-costs", metavar="PATH",
                      help="diff the live cost table against the "
                           "committed archive at PATH; exit 1 when a "
                           "function's derived bound changed without "
                           "a matching '# em-cost:' declaration "
                           "update")
    lint.add_argument("--write-costs-baseline", metavar="PATH",
                      help="write the compact cost-signature archive "
                           "(the --check-costs input) to PATH and "
                           "continue")

    serve = sub.add_parser(
        "serve", help="run the long-lived query service over HTTP")
    serve.add_argument("--table", action="append", default=[],
                       metavar="NAME=PATH",
                       help="CSV file per relation (repeatable); loaded "
                            "once into the catalog at startup")
    serve.add_argument("--instance", default="default",
                       help="catalog name for the loaded tables "
                            "(default 'default')")
    serve.add_argument("-M", type=int, default=4096,
                       help="GLOBAL memory budget in tuples shared by "
                            "all concurrent queries (default 4096)")
    serve.add_argument("-B", type=int, default=64,
                       help="block size in tuples (default 64)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8707,
                       help="bind port (default 8707; 0 picks a free "
                            "one and prints it)")
    serve.add_argument("--pool-frames", type=int, default=0, metavar="N",
                       help="enable the SHARED cross-query buffer pool "
                            "with N page frames (default 0 = off)")
    serve.add_argument("--pool-policy", choices=sorted(POLICIES),
                       default="lru",
                       help="replacement policy for --pool-frames "
                            "(default lru)")
    serve.add_argument("--max-pin-share", type=float, default=0.5,
                       help="fraction of pool frames one session may "
                            "pin (default 0.5)")
    serve.add_argument("--admission-policy",
                       choices=("fifo", "smallest-first"),
                       default="fifo",
                       help="queue order for queries waiting on the "
                            "budget (default fifo)")
    serve.add_argument("--admission-timeout", type=float, default=30.0,
                       help="seconds a query waits for budget before "
                            "503 (default 30)")
    serve.add_argument("--workers", type=int, default=8,
                       help="worker sessions for batched execution "
                            "(default 8)")
    serve.add_argument("--fitted", metavar="PATH",
                       help="fitted-constants document (benchmarks/"
                            "BENCH_fitted.json) arming POST "
                            "/query?explain=1")
    serve.add_argument("--flight-records", type=int, default=256,
                       metavar="N",
                       help="flight-recorder ring capacity in query "
                            "records (default 256; 0 = recording off)")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="flag and count queries slower than MS "
                            "end-to-end (default: off)")
    serve.add_argument("--quota", action="append", default=[],
                       metavar="OWNER=INFLIGHT[:SHARE]",
                       help="per-tenant admission quota (repeatable): "
                            "max concurrent queries, optionally ':' a "
                            "budget share in (0, 1]")
    serve.add_argument("--default-quota", metavar="INFLIGHT[:SHARE]",
                       help="quota applied to tenants without an "
                            "explicit --quota")
    return parser


def cmd_run(args: argparse.Namespace) -> int:  # em-effects: HOST_ONLY -- CLI entry point: loads CSVs and writes reports on the host; the measured run happens inside execute()
    query, layouts = parse_query_and_layouts(args.query)
    tables = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --table expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        tables[name] = path
    missing = set(query.edges) - set(tables)
    if missing:
        print(f"error: no --table for relations {sorted(missing)}",
              file=sys.stderr)
        return 2

    pool = None
    if args.pool_frames:
        if args.pool_frames < 0:
            print(f"error: --pool-frames must be >= 1, got "
                  f"{args.pool_frames}", file=sys.stderr)
            return 2
        pool = PoolConfig(frames=args.pool_frames,
                          policy=args.pool_policy)
    tracer = None
    if args.trace or args.trace_summary:
        if args.trace_sample < 1:
            print(f"error: --trace-sample must be >= 1, got "
                  f"{args.trace_sample}", file=sys.stderr)
            return 2
        if args.trace_buffer < 1:
            print(f"error: --trace-buffer must be >= 1, got "
                  f"{args.trace_buffer}", file=sys.stderr)
            return 2
        tracer = Tracer(capacity=args.trace_buffer,
                        sample_every=args.trace_sample)
    profiler = SpanProfiler() if args.profile else None
    metrics = (MetricsRegistry() if args.metrics or args.metrics_out
               else None)
    device = Device(M=args.M, B=args.B, buffer_pool=pool, tracer=tracer,
                    profiler=profiler, metrics=metrics)
    instance = instance_from_csv(device, tables)
    # Align loaded column layouts to the query text's attribute order.
    for e, attrs in layouts.items():
        have = instance[e].schema.attributes
        if set(have) != set(attrs):
            print(f"error: {tables[e]} has columns {list(have)}, query "
                  f"names {list(attrs)} for {e}", file=sys.stderr)
            return 2

    emitter = CollectingEmitter()
    sink = (ProfiledEmitter(emitter, profiler) if profiler is not None
            else emitter)
    report = execute(query, instance, sink,
                     reduce_first=not args.no_reduce)
    if device.pool is not None:
        # Deferred dirty pages are written back here, after the join /
        # reduce snapshots — attribute them rather than letting them
        # inflate "(unattributed)".
        with device.phases.phase("pool-flush"):
            device.flush_pool()

    cert = None
    if args.certificate:
        # The certificate check re-reads every relation host-side to
        # compute the information-theoretic lower bound; suspend the
        # counters so this audit step is *explicitly* outside the
        # measured run rather than a silent peek at the model's edge.
        with device.stats.suspend():
            data = {e: list(instance[e].peek_tuples())
                    for e in query.edges}
        schemas = instance.schemas()
        cert = certify(query, data, schemas, args.M, args.B, report.io)

    written = None
    if args.out:
        written = dump_results_csv(emitter.results, instance.schemas(),
                                   args.out)

    traced_events = None
    if tracer is not None and args.trace:
        traced_events = tracer.export_jsonl(args.trace)

    profile_events = None
    if profiler is not None:
        profile_events = write_chrome_trace(args.profile, profiler)
    if args.metrics_out:
        # host-side metrics dump, not simulated-device I/O
        with open(args.metrics_out, "w",  # emlint: disable=EM001
                  encoding="utf-8") as fh:
            fh.write(to_prometheus(metrics))

    if args.json:
        payload = {
            "query": args.query,
            "machine": {"M": args.M, "B": args.B},
            "shape": report.shape,
            "algorithm": report.algorithm,
            "results": emitter.count,
            "io": {"reads": device.stats.reads,
                   "writes": device.stats.writes,
                   "total": device.stats.total,
                   "join": report.io,
                   "reduce": report.reduce_reads + report.reduce_writes},
            "phases": device.phases.report(),
            "memory": {"peak": device.memory.peak},
            "cache": (device.stats.cache.as_dict()
                      if device.pool is not None else None),
        }
        if tracer is not None:
            payload["trace_summary"] = tracer.summary()
        if traced_events is not None:
            # Report the trace file's loss honestly: the rollups are
            # exact, but the stored event stream is ring-buffered and
            # sampled, so say how many events the file is missing.
            ev = tracer.summary()["events"]
            payload["trace"] = {"events": traced_events,
                                "path": args.trace,
                                "seen": ev["seen"],
                                "stored": ev["stored"],
                                "sampled_out": ev["sampled_out"],
                                "overwritten": ev["overwritten"]}
        if profiler is not None:
            payload["profile"] = {"path": args.profile,
                                  "events": profile_events,
                                  **profiler.summary()}
        if metrics is not None:
            payload["metrics"] = metrics.as_dict()
            if args.metrics_out:
                payload["metrics_path"] = args.metrics_out
        if cert is not None:
            payload["certificate"] = {
                "lower": cert.lower, "gens_upper": cert.gens_upper,
                "measured_over_lower": cert.measured_over_lower}
        if written is not None:
            payload["wrote"] = {"rows": written, "path": args.out}
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0

    print(f"shape       : {report.shape}")
    print(f"algorithm   : {report.algorithm}")
    print(f"results     : {emitter.count}")
    print(f"io (join)   : {report.io}  ({report.reads} reads, "
          f"{report.writes} writes)")
    print(f"io (reduce) : {report.reduce_reads + report.reduce_writes}")
    phase_report = device.phases.report()
    phases = ", ".join(f"{k}={v}" for k, v in phase_report.items())
    print(f"phases      : {phases}")
    if device.pool is not None:
        c = device.stats.cache
        print(f"cache       : hits={c.hits} misses={c.misses} "
              f"evictions={c.evictions} writebacks={c.writebacks} "
              f"hit_rate={c.hit_rate:.2f}")
    if tracer is not None and args.trace_summary:
        s = tracer.summary()
        print(f"trace       : {s['events']['seen']} events seen, "
              f"{s['events']['stored']} buffered")
        for label, b in s["per_phase"].items():
            print(f"  phase {label}: {b['reads']} reads, "
                  f"{b['writes']} writes")
        top = sorted(s["per_file"].items(),
                     key=lambda kv: -kv[1]["total"])[:5]
        for fname, b in top:
            print(f"  file {fname}: {b['reads']} reads, "
                  f"{b['writes']} writes")
    if traced_events is not None:
        ev = tracer.summary()["events"]
        lost = ev["sampled_out"] + ev["overwritten"]
        print(f"trace file  : {traced_events} of {ev['seen']} events "
              f"to {args.trace}"
              + (f" ({ev['sampled_out']} sampled out, "
                 f"{ev['overwritten']} overwritten)" if lost else ""))
    if profiler is not None:
        s = profiler.summary()
        print(f"profile     : {s['span_count']} spans "
              f"({s['dropped']} dropped) to {args.profile}; "
              f"attributed {s['attributed_io']}/{s['total_io']} I/Os")
    if metrics is not None:
        d = metrics.as_dict()
        print(f"metrics     : {len(d['counters'])} counters, "
              f"{len(d['gauges'])} gauges, "
              f"{len(d['histograms'])} histograms"
              + (f" to {args.metrics_out}" if args.metrics_out else ""))
    if cert is not None:
        print(f"certificate : lower={cert.lower:.1f} "
              f"gens={cert.gens_upper:.1f} "
              f"measured/lower={cert.measured_over_lower:.2f}")
    if written is not None:
        print(f"wrote       : {written} rows to {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    acyclic = is_berge_acyclic(query)
    print(f"edges          : {len(query.edges)}")
    print(f"attributes     : {len(query.attributes)}")
    print(f"berge-acyclic  : {acyclic}")
    if not acyclic:
        print("(the paper's algorithms require Berge-acyclicity; "
              "triangle queries go through repro.core.triangle)")
        return 0
    print(f"shape          : {classify_shape(query)}")
    if query.sizes is not None:
        cover = fractional_edge_cover(query)
        weights = {e: round(x, 2) for e, x in cover.weights.items()}
        print(f"edge cover     : {weights}")
        print(f"AGM bound      : {cover.agm_bound:.1f}")
        chain = detect_line(query)
        if chain is not None:
            from repro.query.lines import classify_line
            sizes = [query.size(e) for e in chain.edges]
            cls = classify_line(sizes)
            print(f"line regime    : {cls.regime} (cover {cls.cover})")
    branches = gens_all(query)
    sizes_of = sorted(len(b) for b in branches)
    print(f"GenS branches  : {len(branches)} "
          f"(collection sizes {sizes_of[0]}..{sizes_of[-1]})")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:  # em-effects: HOST_ONLY -- CLI entry point: loads CSVs and the fitted archive on the host; the measured run happens inside execute()
    from repro.analysis.predict import (explain, fitted_document,
                                        load_fitted, match_fit_class)
    from repro.core import CountingEmitter

    query, layouts = parse_query_and_layouts(args.query)
    tables = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --table expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        tables[name] = path
    missing = set(query.edges) - set(tables)
    if missing:
        print(f"error: no --table for relations {sorted(missing)}",
              file=sys.stderr)
        return 2

    device = Device(M=args.M, B=args.B)
    instance = instance_from_csv(device, tables)
    for e, attrs in layouts.items():
        have = instance[e].schema.attributes
        if set(have) != set(attrs):
            print(f"error: {tables[e]} has columns {list(have)}, query "
                  f"names {list(attrs)} for {e}", file=sys.stderr)
            return 2
    sizes = {e: len(instance[e]) for e in query.edges}

    emitter = CountingEmitter()
    if classify_shape(query) == "cyclic":
        # The acyclic planner refuses cycles; the triangle has its own
        # blocked algorithm (and its own fitted class).
        from repro.core.triangle import triangle_join
        triangle_join(query, instance, emitter)
        shape, algorithm = "cyclic", "triangle-blocked"
    else:
        exec_report = execute(query, instance, emitter,
                              reduce_first=not args.no_reduce)
        shape, algorithm = exec_report.shape, exec_report.algorithm
    measured_io = device.stats.total
    measured_phases = device.phases.report()

    if args.fit_live:
        match = match_fit_class(query, sizes, args.M, args.B)
        if match is None:
            fitted = {"classes": {}}
        else:
            fitted = fitted_document(
                [fit_class(match[0], planner=True)],
                source="repro explain --fit-live")
    else:
        try:
            fitted = load_fitted(args.fitted)
        except (OSError, ValueError) as exc:
            print(f"explain: cannot load fitted constants: {exc}",
                  file=sys.stderr)
            print("explain: generate them with 'repro fit --all "
                  "--write-fitted benchmarks/BENCH_fitted.json' or "
                  "pass --fit-live", file=sys.stderr)
            return 2

    report = explain(query, sizes, args.M, args.B, measured_io,
                     measured_phases, fitted)

    if args.json:
        payload = {"query": args.query,
                   "machine": {"M": args.M, "B": args.B},
                   "sizes": sizes,
                   "shape": shape,
                   "algorithm": algorithm,
                   "results": emitter.count,
                   **report.as_dict()}
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0

    print(f"shape       : {shape}")
    print(f"algorithm   : {algorithm}")
    print(f"results     : {emitter.count}")
    print(f"measured io : {measured_io} pages")
    p = report.prediction
    if p is None:
        print(f"predicted   : (none) — {report.reason}")
        return 0
    extra = "  [EXTRAPOLATED]" if p.extrapolated else ""
    fm = p.fitted_machine
    print(f"predicted   : {p.io:.1f} pages = {p.constant:.3f} * "
          f"{p.bound_name} (class {p.fit_class}, fitted at "
          f"M={fm.get('M')} B={fm.get('B')}){extra}")
    acc = report.accuracy
    if acc is None:
        print("accuracy    : n/a (predicted 0 pages)")
    else:
        flag = ("" if 0.5 <= acc <= 2.0
                else "  [outside [0.5, 2.0] — model lost touch]")
        print(f"accuracy    : measured/predicted = {acc:.3f}{flag}")
    print(f"{'phase':<18}{'predicted':>12}{'measured':>12}{'ratio':>9}")
    for row in report.phase_rows():
        pred = ("-" if row["predicted"] is None
                else f"{row['predicted']:.1f}")
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.3f}"
        print(f"{row['phase']:<18}{pred:>12}{row['measured']:>12}"
              f"{ratio:>9}")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:  # em-effects: HOST_ONLY -- CLI entry point: persists/diffs the fitted archive on the host; the sweeps run on fresh simulated devices
    from repro.analysis.predict import (compare_fitted, fitted_document,
                                        load_fitted, save_fitted)

    classes = sorted(FIT_CLASSES) if args.all else args.classes
    if not classes:
        print("fit: name classes to sweep, or pass --all",
              file=sys.stderr)
        return 2
    unknown = sorted(set(classes) - set(FIT_CLASSES))
    if unknown:
        print(f"fit: unknown class(es) {', '.join(unknown)}; "
              f"available: {', '.join(sorted(FIT_CLASSES))}",
              file=sys.stderr)
        raise SystemExit(2)
    profiler = SpanProfiler() if args.profile else None
    results = []
    for name in classes:
        try:
            results.append(fit_class(name, M=args.M, B=args.B,
                                     points=args.points, eps=args.eps,
                                     profiler=profiler))
        except ValueError as exc:
            print(f"fit: {exc}", file=sys.stderr)
            return 2
    regression = any(r.regression for r in results)

    profile_events = None
    if profiler is not None:
        profile_events = write_chrome_trace(args.profile, profiler)

    # The persisted document models the engine's real execution path
    # (planner + reducer), not the bare algorithms the regression gate
    # sweeps — that is what `repro explain` compares measurements to.
    planner_fits = None
    if args.write_fitted or args.check_fitted:
        planner_fits = [fit_class(name, M=args.M, B=args.B,
                                  points=args.points, eps=args.eps,
                                  planner=True) for name in classes]
    if args.write_fitted:
        save_fitted(args.write_fitted, planner_fits,
                    source="repro fit (planner path)")
    drift: list[str] = []
    if args.check_fitted:
        try:
            committed = load_fitted(args.check_fitted)
        except (OSError, ValueError) as exc:
            print(f"fit: bad fitted document {args.check_fitted}: "
                  f"{exc}", file=sys.stderr)
            return 2
        drift = compare_fitted(
            committed,
            fitted_document(planner_fits,
                            source="repro fit (planner path)"))

    if args.json:
        payload = {"fits": [r.as_dict() for r in results],
                   "regression": regression}
        if args.profile:
            payload["profile"] = {"path": args.profile,
                                  "events": profile_events}
        if args.write_fitted:
            payload["fitted_path"] = args.write_fitted
        if args.check_fitted:
            payload["fitted_drift"] = drift
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 1 if regression or drift else 0

    for r in results:
        flag = "REGRESSION" if r.regression else "ok"
        print(f"{r.name}: io ~= {r.constant:.3f} * {r.bound_name}  "
              f"[{flag}]")
        print(f"  slope={r.slope:.3f} (eps={r.eps}) "
              f"intercept={r.intercept:.3f} r2={r.r2:.4f}")
        shares = ", ".join(f"{t}={s:.2f}" for t, s in
                           sorted(r.term_shares.items()))
        print(f"  terms: {shares}  dominant={r.dominant_term}")
        for p in r.points:
            print(f"    n={p.n:<6} M={p.M:<4} B={p.B:<3} "
                  f"io={p.io:<8} bound={p.bound:<10.1f} "
                  f"ratio={p.ratio:.3f}")
    if profiler is not None:
        print(f"profile: {profile_events} spans to {args.profile}")
    if args.write_fitted:
        print(f"fitted: wrote {len(results)} class(es) to "
              f"{args.write_fitted}")
    for line in drift:
        print(f"fitted drift: {line}")
    if args.check_fitted and not drift:
        print(f"fitted: {len(results)} class(es) match "
              f"{args.check_fitted}")
    if regression:
        print("complexity regression detected (slope exceeds 1+eps)")
    return 1 if regression or drift else 0


def _dump_json_doc(doc: object, path: str) -> None:  # em-effects: HOST_ONLY -- lint report writer
    """Write one lint analysis document ('-' = stdout)."""
    text = json.dumps(doc, indent=2, sort_keys=False)
    if path == "-":
        print(text)
    else:
        # host-side analysis artifact, not simulated-device I/O
        with open(path, "w",  # emlint: disable=EM001
                  encoding="utf-8") as fh:
            fh.write(text + "\n")


def _write_archive(path: str, compact: dict, what: str) -> None:  # em-effects: HOST_ONLY -- lint archive writer
    """Write one compact drift-gate archive (the --check-* input)."""
    # host-side analysis artifact, not simulated-device I/O
    with open(path, "w",  # emlint: disable=EM001
              encoding="utf-8") as fh:
        json.dump(compact, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"lint: wrote {what} to {path}")


def _placeholder_failures(doc: object, trail: str = "") -> list[str]:
    """Committed gate documents must not carry placeholder
    justifications: an archive entry nobody justified was never
    reviewed.  Walks any JSON document, returns one failure per
    ``"justification": "TODO: justify"`` found."""
    from repro.lint.baseline import PLACEHOLDER_JUSTIFICATION
    found: list[str] = []
    if isinstance(doc, dict):
        for key, value in sorted(doc.items()):
            here = f"{trail}.{key}" if trail else str(key)
            if (key == "justification" and isinstance(value, str)
                    and value.strip().startswith(
                        PLACEHOLDER_JUSTIFICATION)):
                found.append(
                    f"{trail or '<root>'}: placeholder justification "
                    f"({PLACEHOLDER_JUSTIFICATION!r}); fill it in "
                    f"before committing")
            else:
                found.extend(_placeholder_failures(value, here))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            found.extend(_placeholder_failures(value, f"{trail}[{i}]"))
    return found


def _drift_gate(kind: str, committed_path: str, live_doc: dict,
                compare) -> list[str] | None:  # em-effects: HOST_ONLY -- reads committed archives, prints the diff
    """One --check-* drift gate, shared by effects, locks and costs.

    Returns the failure lines (empty = gate passed) or ``None`` when
    the committed archive cannot be read (the caller exits 2, the
    uniform bad-input code)."""
    try:
        # host-side analysis artifact, not simulated-device I/O
        with open(committed_path,  # emlint: disable=EM001
                  encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"lint: bad {kind} baseline {committed_path}: {exc}",
              file=sys.stderr)
        return None
    failures, notices = compare(committed, live_doc)
    failures = list(failures) + _placeholder_failures(committed)
    for line in notices:
        print(f"{kind}: {line}")
    for line in failures:
        print(f"{kind}: FAIL: {line}")
    if not failures:
        print(f"{kind}: checked against {committed_path}: ok")
    return failures


def cmd_lint(args: argparse.Namespace) -> int:  # em-effects: HOST_ONLY -- the checker reads sources and writes reports on the host
    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code} [{rule.name}] — {rule.summary}")
            print(f"    {rule.rationale}")
        return 0

    try:
        baseline = (Baseline() if args.no_baseline
                    else load_baseline(args.baseline))
    except (ValueError, OSError, KeyError) as exc:
        print(f"lint: bad baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        found = lint_paths(args.paths, root=args.root)
        new = Baseline.from_violations(found.violations)
        write_baseline(new, args.baseline)
        print(f"lint: wrote {len(new.entries)} entr(y|ies) covering "
              f"{len(found.violations)} finding(s) to {args.baseline}")
        return 0

    result = lint_paths(args.paths, root=args.root, baseline=baseline)
    for dump_path, doc in ((args.effects, result.signatures),
                           (args.locks, result.locks),
                           (args.costs, result.costs)):
        if dump_path:
            _dump_json_doc(doc, dump_path)
    if args.write_effects_baseline:
        compact = compact_effect_signatures(result.signatures)
        _write_archive(args.write_effects_baseline, compact,
                       f"{len(compact['signatures'])} effect "
                       f"signature(s)")
    if args.write_locks_baseline:
        compact = compact_lock_signatures(result.locks)
        _write_archive(args.write_locks_baseline, compact,
                       f"{len(compact['locks'])} lock(s) and "
                       f"{len(compact['edges'])} order edge(s)")
    if args.write_costs_baseline:
        compact = compact_cost_signatures(result.costs)
        _write_archive(args.write_costs_baseline, compact,
                       f"{len(compact['costs'])} cost signature(s)")
    # The three drift gates share one compare-and-report shape: load
    # the committed archive (exit 2 when unreadable), reject
    # placeholder justifications, diff, print notices and FAIL lines.
    gate_failures: list[str] = []
    for kind, committed_path, live_doc, compare in (
            ("locks", args.check_locks, result.locks,
             compare_lock_signatures),
            ("effects", args.check_effects, result.signatures,
             compare_effect_signatures),
            ("costs", args.check_costs, result.costs,
             compare_cost_signatures)):
        if not committed_path:
            continue
        failures = _drift_gate(kind, committed_path, live_doc, compare)
        if failures is None:
            return 2
        gate_failures.extend(failures)
    # Under any --check-* gate the suppression baseline is policed
    # too: committed entries whose justification is still the
    # --write-baseline placeholder were never reviewed and must not
    # pass a CI-strict run silently.  (Plain runs stay lenient so the
    # write-baseline-then-iterate workflow keeps working.)
    gated_run = bool(args.check_locks or args.check_effects
                     or args.check_costs)
    for entry in (baseline.placeholder_entries() if gated_run else ()):
        line = (f"lint: FAIL: {entry.path}: {entry.code} "
                f"[{entry.scope}] baseline entry still carries the "
                f"placeholder justification; justify it or fix the "
                f"finding")
        print(line)
        gate_failures.append(line)
    if args.format == "json":
        print(to_json(result, baseline_path=args.baseline))
    else:
        print(to_human(result, baseline_path=args.baseline))
    # Stale baseline entries fail the run too: the baseline documents
    # reality, and reality moved.
    return (0 if result.clean and not result.stale_baseline
            and not gate_failures else 1)


def cmd_serve(args: argparse.Namespace) -> int:  # em-effects: HOST_ONLY -- long-lived host process: sockets, stdout, CSV loading; measured I/O happens inside sessions
    # Imported here so `repro run` and friends never pay for the
    # service layer (threading machinery, HTTP plumbing).
    from repro.analysis.predict import load_fitted
    from repro.server import QueryService, Quota, make_server

    tables: dict[str, str] = {}
    for spec in args.table or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"serve: bad --table {spec!r}; expected NAME=PATH",
                  file=sys.stderr)
            return 2
        tables[name] = path

    def parse_limits(text: str) -> tuple[int | None, float | None]:
        inflight, sep, share = text.partition(":")
        return (int(inflight) if inflight else None,
                float(share) if sep else None)

    default_quota = None
    if args.default_quota:
        try:
            mi, ms = parse_limits(args.default_quota)
            default_quota = Quota(max_inflight=mi, max_share=ms)
        except ValueError as exc:
            print(f"serve: bad --default-quota "
                  f"{args.default_quota!r}: {exc}", file=sys.stderr)
            return 2
    quotas: dict[str, tuple[int | None, float | None]] = {}
    for spec in args.quota:
        owner, sep, rest = spec.partition("=")
        try:
            if not sep or not owner or not rest:
                raise ValueError("expected OWNER=INFLIGHT[:SHARE]")
            quotas[owner] = parse_limits(rest)
        except ValueError as exc:
            print(f"serve: bad --quota {spec!r}: {exc}",
                  file=sys.stderr)
            return 2

    fitted = None
    if args.fitted:
        try:
            fitted = load_fitted(args.fitted)
        except (OSError, ValueError) as exc:
            print(f"serve: bad --fitted {args.fitted}: {exc}",
                  file=sys.stderr)
            return 2

    svc = QueryService(
        M=args.M, B=args.B, pool_frames=args.pool_frames,
        pool_policy=args.pool_policy, max_pin_share=args.max_pin_share,
        admission_policy=args.admission_policy,
        admission_timeout=args.admission_timeout, workers=args.workers,
        flight_records=args.flight_records,
        slow_query_ms=args.slow_query_ms, default_quota=default_quota,
        fitted=fitted)
    try:
        for owner, (mi, ms) in quotas.items():
            svc.set_quota(owner, max_inflight=mi, max_share=ms)
    except ValueError as exc:
        print(f"serve: bad quota: {exc}", file=sys.stderr)
        svc.close()
        return 2
    try:
        if tables:
            svc.load_tables(args.instance, tables)
            print(f"serve: loaded {len(tables)} table(s) into instance "
                  f"{args.instance!r}")
        server = make_server(svc, args.host, args.port)
    except (OSError, ValueError, KeyError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        svc.close()
        return 2
    pool = (f"pool={args.pool_frames} frames ({args.pool_policy})"
            if args.pool_frames else "pool=off")
    print(f"serve: listening on http://{args.host}:{server.server_port} "
          f"(M={args.M}, B={args.B}, {pool}, "
          f"admission={args.admission_policy})")
    print("serve: routes: GET /metrics /healthz /stats /catalog "
          "/debug/queries[/<id>], POST /query[?explain=1] — "
          "Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("serve: shutting down")
    finally:
        server.server_close()
        svc.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    if args.command == "explain":
        return cmd_explain(args)
    if args.command == "fit":
        return cmd_fit(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "serve":
        return cmd_serve(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
