"""Command-line interface: run and analyze joins from the shell.

Two subcommands::

    python -m repro run --query "R(a,b), S(b,c)" \\
        --table R=follows.csv --table S=lives.csv -M 1024 -B 64 \\
        [--out results.csv] [--no-reduce] [--json] \\
        [--pool-frames 16 --pool-policy lru] \\
        [--trace out.jsonl --trace-summary]

    python -m repro analyze --query "e1(v1,v2)[100], e2(v2,v3)[50]" \\
        -M 1024 -B 64

``run`` loads the CSV tables, executes the planner, and reports the
results count, I/O bill, per-phase breakdown, and the optimality
certificate.  ``--pool-frames``/``--pool-policy`` opt into the buffer
pool (cache counters join the report); ``--trace`` attaches a
:class:`~repro.obs.Tracer` and exports the event stream as JSON Lines
(``--trace-summary`` adds its exact per-file/per-phase rollups to the
report); ``--json`` emits the whole report as one JSON document so
benchmarks and CI can scrape results without parsing prose.  ``analyze`` is purely structural: shape,
acyclicity, edge cover / AGM bound, balance regime for lines, and the
GenS branch summary — no data needed (sizes come from the ``[n]``
annotations).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import certify
from repro.core import CollectingEmitter, execute
from repro.em.bufferpool import PoolConfig
from repro.em.policies import POLICIES
from repro.data.io import dump_results_csv, instance_from_csv
from repro.em.device import Device
from repro.obs import Tracer
from repro.query import (fractional_edge_cover, gens_all,
                         is_berge_acyclic)
from repro.query.parse import parse_query, parse_schemas
from repro.query.shapes import classify_shape, detect_line


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case I/O-optimal acyclic joins "
                    "(Hu & Yi, PODS 2016) on a simulated EM machine.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a join over CSV tables")
    run.add_argument("--query", required=True,
                     help="query text, e.g. 'R(a,b), S(b,c)'")
    run.add_argument("--table", action="append", default=[],
                     metavar="NAME=PATH",
                     help="CSV file per relation (repeatable)")
    run.add_argument("-M", type=int, default=1024,
                     help="memory size in tuples (default 1024)")
    run.add_argument("-B", type=int, default=64,
                     help="block size in tuples (default 64)")
    run.add_argument("--out", help="write results to this CSV")
    run.add_argument("--no-reduce", action="store_true",
                     help="skip the full reducer (input already reduced)")
    run.add_argument("--certificate", action="store_true",
                     help="also compute the optimality certificate "
                          "(expensive: joins in memory)")
    run.add_argument("--pool-frames", type=int, default=0, metavar="N",
                     help="enable the buffer pool with N page frames "
                          "(default 0 = off, paper-faithful accounting)")
    run.add_argument("--pool-policy", choices=sorted(POLICIES),
                     default="lru",
                     help="replacement policy for --pool-frames "
                          "(default lru)")
    run.add_argument("--json", action="store_true",
                     help="emit one JSON document instead of prose "
                          "(io, phases, memory peak, cache counters)")
    run.add_argument("--trace", metavar="PATH",
                     help="trace device events (reads, writes, cache, "
                          "phases, memory peaks) and export them as "
                          "JSON Lines to PATH")
    run.add_argument("--trace-summary", action="store_true",
                     help="report the tracer's exact per-file/per-phase "
                          "rollups (implies tracing; adds a "
                          "trace_summary section under --json)")
    run.add_argument("--trace-sample", type=int, default=1, metavar="K",
                     help="store every K-th I/O event in the trace "
                          "buffer (rollups stay exact; default 1)")
    run.add_argument("--trace-buffer", type=int, default=65536,
                     metavar="N",
                     help="ring-buffer capacity in events (oldest "
                          "events are overwritten; default 65536)")

    analyze = sub.add_parser("analyze",
                             help="structural analysis of a query")
    analyze.add_argument("--query", required=True,
                         help="query text with optional [size] suffixes")
    analyze.add_argument("-M", type=int, default=1024)
    analyze.add_argument("-B", type=int, default=64)
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    layouts = parse_schemas(args.query)
    tables = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --table expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        tables[name] = path
    missing = set(query.edges) - set(tables)
    if missing:
        print(f"error: no --table for relations {sorted(missing)}",
              file=sys.stderr)
        return 2

    pool = None
    if args.pool_frames:
        if args.pool_frames < 0:
            print(f"error: --pool-frames must be >= 1, got "
                  f"{args.pool_frames}", file=sys.stderr)
            return 2
        pool = PoolConfig(frames=args.pool_frames,
                          policy=args.pool_policy)
    tracer = None
    if args.trace or args.trace_summary:
        if args.trace_sample < 1:
            print(f"error: --trace-sample must be >= 1, got "
                  f"{args.trace_sample}", file=sys.stderr)
            return 2
        if args.trace_buffer < 1:
            print(f"error: --trace-buffer must be >= 1, got "
                  f"{args.trace_buffer}", file=sys.stderr)
            return 2
        tracer = Tracer(capacity=args.trace_buffer,
                        sample_every=args.trace_sample)
    device = Device(M=args.M, B=args.B, buffer_pool=pool, tracer=tracer)
    instance = instance_from_csv(device, tables)
    # Align loaded column layouts to the query text's attribute order.
    for e, attrs in layouts.items():
        have = instance[e].schema.attributes
        if set(have) != set(attrs):
            print(f"error: {tables[e]} has columns {list(have)}, query "
                  f"names {list(attrs)} for {e}", file=sys.stderr)
            return 2

    emitter = CollectingEmitter()
    report = execute(query, instance, emitter,
                     reduce_first=not args.no_reduce)
    if device.pool is not None:
        # Deferred dirty pages are written back here, after the join /
        # reduce snapshots — attribute them rather than letting them
        # inflate "(unattributed)".
        with device.phases.phase("pool-flush"):
            device.flush_pool()

    cert = None
    if args.certificate:
        data = {e: list(instance[e].peek_tuples()) for e in query.edges}
        schemas = instance.schemas()
        cert = certify(query, data, schemas, args.M, args.B, report.io)

    written = None
    if args.out:
        written = dump_results_csv(emitter.results, instance.schemas(),
                                   args.out)

    traced_events = None
    if tracer is not None and args.trace:
        traced_events = tracer.export_jsonl(args.trace)

    if args.json:
        payload = {
            "query": args.query,
            "machine": {"M": args.M, "B": args.B},
            "shape": report.shape,
            "algorithm": report.algorithm,
            "results": emitter.count,
            "io": {"reads": device.stats.reads,
                   "writes": device.stats.writes,
                   "total": device.stats.total,
                   "join": report.io,
                   "reduce": report.reduce_reads + report.reduce_writes},
            "phases": device.phases.report(),
            "memory": {"peak": device.memory.peak},
            "cache": (device.stats.cache.as_dict()
                      if device.pool is not None else None),
        }
        if tracer is not None:
            payload["trace_summary"] = tracer.summary()
        if traced_events is not None:
            payload["trace"] = {"events": traced_events,
                                "path": args.trace}
        if cert is not None:
            payload["certificate"] = {
                "lower": cert.lower, "gens_upper": cert.gens_upper,
                "measured_over_lower": cert.measured_over_lower}
        if written is not None:
            payload["wrote"] = {"rows": written, "path": args.out}
        print(json.dumps(payload, indent=2, sort_keys=False))
        return 0

    print(f"shape       : {report.shape}")
    print(f"algorithm   : {report.algorithm}")
    print(f"results     : {emitter.count}")
    print(f"io (join)   : {report.io}  ({report.reads} reads, "
          f"{report.writes} writes)")
    print(f"io (reduce) : {report.reduce_reads + report.reduce_writes}")
    phase_report = device.phases.report()
    phases = ", ".join(f"{k}={v}" for k, v in phase_report.items())
    print(f"phases      : {phases}")
    if device.pool is not None:
        c = device.stats.cache
        print(f"cache       : hits={c.hits} misses={c.misses} "
              f"evictions={c.evictions} writebacks={c.writebacks} "
              f"hit_rate={c.hit_rate:.2f}")
    if tracer is not None and args.trace_summary:
        s = tracer.summary()
        print(f"trace       : {s['events']['seen']} events seen, "
              f"{s['events']['stored']} buffered")
        for label, b in s["per_phase"].items():
            print(f"  phase {label}: {b['reads']} reads, "
                  f"{b['writes']} writes")
        top = sorted(s["per_file"].items(),
                     key=lambda kv: -kv[1]["total"])[:5]
        for fname, b in top:
            print(f"  file {fname}: {b['reads']} reads, "
                  f"{b['writes']} writes")
    if traced_events is not None:
        print(f"trace file  : {traced_events} events to {args.trace}")
    if cert is not None:
        print(f"certificate : lower={cert.lower:.1f} "
              f"gens={cert.gens_upper:.1f} "
              f"measured/lower={cert.measured_over_lower:.2f}")
    if written is not None:
        print(f"wrote       : {written} rows to {args.out}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    acyclic = is_berge_acyclic(query)
    print(f"edges          : {len(query.edges)}")
    print(f"attributes     : {len(query.attributes)}")
    print(f"berge-acyclic  : {acyclic}")
    if not acyclic:
        print("(the paper's algorithms require Berge-acyclicity; "
              "triangle queries go through repro.core.triangle)")
        return 0
    print(f"shape          : {classify_shape(query)}")
    if query.sizes is not None:
        cover = fractional_edge_cover(query)
        weights = {e: round(x, 2) for e, x in cover.weights.items()}
        print(f"edge cover     : {weights}")
        print(f"AGM bound      : {cover.agm_bound:.1f}")
        chain = detect_line(query)
        if chain is not None:
            from repro.query.lines import classify_line
            sizes = [query.size(e) for e in chain.edges]
            cls = classify_line(sizes)
            print(f"line regime    : {cls.regime} (cover {cls.cover})")
    branches = gens_all(query)
    sizes_of = sorted(len(b) for b in branches)
    print(f"GenS branches  : {len(branches)} "
          f"(collection sizes {sizes_of[0]}..{sizes_of[-1]})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
