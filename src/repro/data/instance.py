"""Database instances: a set of named relations.

An :class:`Instance` maps hyperedge names to on-disk
:class:`~repro.data.relation.Relation` objects.  The query structure
itself lives in :mod:`repro.query`; instances deliberately do not know
about queries so that the recursion of Algorithm 2 can freely rebind
relations (restrictions, semijoin results) while the query structure
shrinks independently.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, TYPE_CHECKING

from repro.data.relation import Relation
from repro.data.schema import RelationSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device


class Instance(Mapping[str, Relation]):
    """An immutable name → relation mapping with convenience builders."""

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation]):
        if isinstance(relations, Mapping):
            self._relations = dict(relations)
        else:
            self._relations = {r.name: r for r in relations}
        for name, rel in self._relations.items():
            if name != rel.name:
                raise ValueError(
                    f"instance key {name!r} does not match relation "
                    f"name {rel.name!r}")

    # -- Mapping interface ----------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    # -- builders ---------------------------------------------------------

    @classmethod
    def from_dicts(cls, device: "Device",
                   schemas: Mapping[str, tuple[str, ...]],
                   data: Mapping[str, Iterable[tuple]]) -> "Instance":
        """Build an instance from ``{name: attr tuple}`` and ``{name: rows}``.

        Input relations are materialized without charging I/O (they
        pre-exist on disk in the model).
        """
        missing = set(schemas) - set(data)
        if missing:
            raise ValueError(f"no data supplied for relations {sorted(missing)}")
        rels = {}
        for name, attrs in schemas.items():
            schema = RelationSchema(name, tuple(attrs))
            rels[name] = Relation.from_tuples(device, schema, data[name])
        return cls(rels)

    def replace(self, **rebinds: Relation) -> "Instance":
        """A copy with some relations rebound (restrictions, semijoins)."""
        new = dict(self._relations)
        for name, rel in rebinds.items():
            new[name] = rel
        return Instance(new)

    def drop(self, *names: str) -> "Instance":
        """A copy without the given relations."""
        new = {k: v for k, v in self._relations.items() if k not in names}
        return Instance(new)

    # -- metadata -----------------------------------------------------------

    def sizes(self) -> dict[str, int]:
        """``{name: |R(e)|}`` for every relation."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def schemas(self) -> dict[str, tuple[str, ...]]:
        """``{name: attribute tuple}`` for every relation."""
        return {name: rel.schema.attributes
                for name, rel in self._relations.items()}

    def to_memory(self) -> dict[str, list[tuple]]:
        """All tuples, uncharged.  For oracles and tests only."""
        return {name: list(rel.peek_tuples())
                for name, rel in self._relations.items()}

    def value_of(self, result: Mapping[str, tuple], attribute: str) -> Any:
        """Resolve ``attribute``'s value from an emitted result.

        ``result`` maps edge names to their participating tuples; the
        first relation whose schema contains ``attribute`` supplies the
        value.
        """
        for name, t in result.items():
            rel = self._relations.get(name)
            if rel is not None and attribute in rel.schema:
                return rel.schema.value(t, attribute)
        raise KeyError(f"attribute {attribute!r} not found in result over "
                       f"{sorted(result)}")
