"""On-disk relations for the external-memory algorithms.

A :class:`Relation` couples a :class:`~repro.data.schema.RelationSchema`
with the on-disk tuples (an :class:`~repro.em.file.EMFile` or a
:class:`~repro.em.file.FileSegment` of one), remembers which attribute
the data is currently sorted on, and records columns whose value is
fixed by an enclosing restriction (``R(e)|_{v=a}`` fixes ``v = a``).

Fixed columns matter for the *emit model*: when the recursion of the
paper's Algorithm 2 drops a bud, the participating bud tuple must still
be reconstructible at emit time; every physical column of a dropped bud
is either its one remaining query attribute or a fixed column.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.data.schema import RelationSchema
from repro.em.file import EMFile, FileSegment
from repro.em.sort import external_sort

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device


@dataclass(frozen=True)
class Relation:
    """An on-disk relation with sorting and restriction metadata."""

    schema: RelationSchema
    data: FileSegment
    sorted_on: str | None = None
    fixed: Mapping[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------

    @classmethod
    def from_tuples(cls, device: "Device", schema: RelationSchema,
                    tuples: Iterable[tuple], *,
                    charge_io: bool = False) -> "Relation":
        """Materialize ``tuples`` on ``device`` under ``schema``.

        By default the write I/Os are *not* charged: inputs pre-exist on
        disk in the paper's model.  Pass ``charge_io=True`` for
        intermediate results an algorithm pays to write.
        """
        ts = [tuple(t) for t in tuples]
        width = len(schema.attributes)
        for t in ts:
            if len(t) != width:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, schema {schema.name} "
                    f"expects {width}")
        maker = (device.file_from_tuples if charge_io
                 else device.file_from_tuples_free)
        f = maker(ts, schema.name)
        return cls(schema=schema, data=f.whole())

    # -- basic accessors ------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def device(self) -> "Device":
        return self.data.device

    def __len__(self) -> int:
        return len(self.data)

    def key(self, attribute: str):
        return self.schema.key(attribute)

    # -- physical operations (charged) -----------------------------------

    def sort_by(self, attribute: str) -> "Relation":
        """Return this relation externally sorted on ``attribute``.

        A no-op (returning ``self``) when already sorted on it.  The
        sort cost is charged to the device.
        """
        if self.sorted_on == attribute:
            return self
        with self.device.phases.phase("sort"):
            out = external_sort(self.data, self.key(attribute),
                                name=f"{self.name}.by_{attribute}")
        return replace(self, data=out.whole(), sorted_on=attribute)

    def restrict(self, start: int, stop: int, *, attribute: str,
                 value: Any) -> "Relation":
        """The contiguous slice ``[start, stop)`` where ``attribute = value``.

        Requires the relation to be sorted on ``attribute`` so that the
        slice is physically contiguous (no I/O is charged here; reads of
        the slice are charged when performed).
        """
        if self.sorted_on != attribute:
            raise ValueError(
                f"restrict on {attribute!r} requires sorting on it first "
                f"(currently sorted on {self.sorted_on!r})")
        fixed = dict(self.fixed)
        fixed[attribute] = value
        return replace(self, data=self.data.subsegment(start, stop),
                       fixed=fixed)

    def rewrite(self, tuples: Iterable[tuple], *, label: str = "tmp",
                sorted_on: str | None = None) -> "Relation":
        """Write ``tuples`` to a new file (charged) with the same schema."""
        f = self.device.file_from_tuples(tuples, f"{self.name}.{label}")
        return replace(self, data=f.whole(), sorted_on=sorted_on)

    # -- uncharged helpers (oracles and tests only) ----------------------

    def peek_tuples(self):
        """All tuples, free of I/O charges.  For tests/oracles only."""
        return self.data.peek_tuples()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Relation({self.name}, n={len(self)}, "
                f"sorted_on={self.sorted_on!r}, fixed={dict(self.fixed)})")
