"""Loading relations from delimited files.

Real adopters have CSV/TSV data, not Python lists; this module loads
such files onto a simulated device (uncharged, like all inputs) with
light type inference, and writes emit-model results back out.

Values are parsed as ``int`` when every row agrees, else ``float``,
else kept as strings — per column, so mixed files behave predictably.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.em.device import Device


def read_csv_rows(path: str | Path, *,  # em-effects: HOST_ONLY -- the CSV bridge reads host files once, before the measured run
                  attributes: tuple[str, ...] | None = None,
                  delimiter: str = ",",
                  header: bool = True) -> tuple[tuple[str, ...], list[tuple]]:
    """The host-side half of :func:`load_csv`: read, validate, infer.

    Returns ``(attributes, typed rows)`` without touching any device —
    the form the server catalog caches so one file read can feed many
    sessions.  Rows are returned as parsed (duplicates intact); set
    semantics are applied at materialization time.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        rows = [tuple(cell.strip() for cell in row)
                for row in reader if row]
    if not rows:
        raise ValueError(f"{path} is empty")
    if header:
        head, rows = rows[0], rows[1:]
        if attributes is None:
            attributes = tuple(head)
    if attributes is None:
        raise ValueError("attributes are required when header=False")
    width = len(attributes)
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {i + (2 if header else 1)} has "
                f"{len(row)} fields, expected {width}")
    return tuple(attributes), _infer_columns(rows)


def load_csv(device: Device, path: str | Path, name: str, *,  # em-effects: HOST_ONLY -- the CSV bridge reads host files once, before the measured run
             attributes: tuple[str, ...] | None = None,
             delimiter: str = ",", header: bool = True) -> Relation:
    """Load one delimited file as a relation named ``name``.

    With ``header=True`` the first row names the attributes (unless
    ``attributes`` overrides them); otherwise ``attributes`` is
    required.  Duplicate rows are dropped (relations are sets) — the
    count removed is available via ``len`` comparison by the caller.
    """
    attributes, typed = read_csv_rows(path, attributes=attributes,
                                      delimiter=delimiter, header=header)
    schema = RelationSchema(name, tuple(attributes))
    return Relation.from_tuples(device, schema, sorted(set(typed)))


def _infer_columns(rows: list[tuple[str, ...]]) -> list[tuple]:
    """Per-column int → float → str inference."""
    if not rows:
        return []
    n_cols = len(rows[0])
    casters = []
    for c in range(n_cols):
        values = [row[c] for row in rows]
        caster = str
        if all(_is_int(v) for v in values):
            caster = int
        elif all(_is_float(v) for v in values):
            caster = float
        casters.append(caster)
    return [tuple(cast(v) for cast, v in zip(casters, row))
            for row in rows]


def _is_int(s: str) -> bool:
    try:
        int(s)
        return True
    except ValueError:
        return False


def _is_float(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return False


def instance_from_csv(device: Device,  # em-effects: HOST_ONLY -- the CSV bridge reads host files once, before the measured run
                      tables: Mapping[str, str | Path], *,
                      delimiter: str = ",",
                      header: bool = True) -> Instance:
    """Load ``{relation name: csv path}`` into one instance."""
    rels = {name: load_csv(device, path, name, delimiter=delimiter,
                           header=header)
            for name, path in tables.items()}
    return Instance(rels)


def dump_results_csv(results: Iterable[Mapping[str, tuple]],  # em-effects: HOST_ONLY -- result export writes host files after the measured run
                     schemas: Mapping[str, tuple[str, ...]],
                     path: str | Path, *, delimiter: str = ",") -> int:
    """Write emit-model results as one flat CSV of attribute values.

    Columns are the union of attributes in sorted order; returns the
    number of rows written.  (This is a *host-side* export — it does
    not participate in the I/O accounting, which models the join
    itself, not post-processing.)
    """
    path = Path(path)
    results = list(results)
    attrs: list[str] = sorted({a for schema in schemas.values()
                               for a in schema})
    n = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter=delimiter)
        writer.writerow(attrs)
        for result in results:
            merged: dict[str, object] = {}
            for edge, t in result.items():
                for a, v in zip(schemas[edge], t):
                    merged[a] = v
            writer.writerow([merged.get(a, "") for a in attrs])
            n += 1
    return n
