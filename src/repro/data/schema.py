"""Relation schemas.

A tuple in this library is a plain Python ``tuple`` whose positions are
named by a :class:`RelationSchema`.  Attribute names are strings; the
query hypergraph (see :mod:`repro.query`) refers to the same names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class RelationSchema:
    """Positional attribute naming for one relation.

    Parameters
    ----------
    name:
        The relation (hyperedge) name, e.g. ``"e1"``.
    attributes:
        Ordered attribute names; tuple position ``i`` holds the value of
        ``attributes[i]``.
    """

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(
                f"duplicate attribute in schema {self.name}: {self.attributes}")

    def index(self, attribute: str) -> int:
        """Position of ``attribute`` in tuples of this relation."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(
                f"attribute {attribute!r} not in schema {self.name} "
                f"{self.attributes}") from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def key(self, attribute: str) -> Callable[[tuple], Any]:
        """A sort/group key function extracting ``attribute``."""
        i = self.index(attribute)
        return lambda t: t[i]

    def multi_key(self, attributes: Iterable[str]) -> Callable[[tuple], tuple]:
        """A lexicographic key over several attributes."""
        idxs = [self.index(a) for a in attributes]
        return lambda t: tuple(t[i] for i in idxs)

    def value(self, t: tuple, attribute: str) -> Any:
        """The value of ``attribute`` in tuple ``t``."""
        return t[self.index(attribute)]

    def project(self, t: tuple, attributes: Iterable[str]) -> tuple:
        """Project tuple ``t`` onto ``attributes`` (in the given order)."""
        return tuple(t[self.index(a)] for a in attributes)

    def common(self, other: "RelationSchema") -> tuple[str, ...]:
        """Attributes shared with ``other``, in this schema's order."""
        return tuple(a for a in self.attributes if a in other)
