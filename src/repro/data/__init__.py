"""Relational substrate: schemas, on-disk relations, instances."""

from repro.data.instance import Instance
from repro.data.io import (dump_results_csv, instance_from_csv, load_csv)
from repro.data.relation import Relation
from repro.data.schema import RelationSchema

__all__ = ["Instance", "Relation", "RelationSchema", "load_csv",
           "instance_from_csv", "dump_results_csv"]
