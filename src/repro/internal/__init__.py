"""Internal-memory baselines: hash join, sort-merge, Yannakakis, generic join."""

from repro.internal.generic_join import (build_value_index, generic_join,
                                         generic_join_count)
from repro.internal.hashjoin import (Assignment, canonical, hash_join,
                                     join_count, join_query,
                                     project_assignments)
from repro.internal.sortmerge import sort_merge_join
from repro.internal.yannakakis import yannakakis, yannakakis_with_stats

__all__ = [
    "Assignment", "canonical", "hash_join", "join_count", "join_query",
    "project_assignments", "sort_merge_join", "generic_join",
    "generic_join_count", "build_value_index", "yannakakis",
    "yannakakis_with_stats",
]
