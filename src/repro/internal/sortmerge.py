"""In-memory sort-merge join on a single shared attribute.

Reference semantics for the external-memory two-way joins of Section 3;
tests cross-check it against :func:`repro.internal.hashjoin.hash_join`.
"""

from __future__ import annotations

from typing import Sequence

from repro.internal.hashjoin import Table


def sort_merge_join(left: Table, left_schema: Sequence[str], right: Table,
                    right_schema: Sequence[str], attr: str
                    ) -> tuple[Table, tuple[str, ...]]:
    """Natural join of two tables on one shared attribute ``attr``."""
    left_schema = tuple(left_schema)
    right_schema = tuple(right_schema)
    li = left_schema.index(attr)
    ri = right_schema.index(attr)
    right_only_idx = [i for i, a in enumerate(right_schema) if a != attr
                      and a not in left_schema]
    out_schema = left_schema + tuple(right_schema[i] for i in right_only_idx)

    ls = sorted(left, key=lambda t: t[li])
    rs = sorted(right, key=lambda t: t[ri])
    out: Table = []
    i = j = 0
    while i < len(ls) and j < len(rs):
        a, b = ls[i][li], rs[j][ri]
        if a < b:
            i += 1
        elif a > b:
            j += 1
        else:
            # Emit the full group × group block for this value.
            i2 = i
            while i2 < len(ls) and ls[i2][li] == a:
                i2 += 1
            j2 = j
            while j2 < len(rs) and rs[j2][ri] == a:
                j2 += 1
            for t in ls[i:i2]:
                for u in rs[j:j2]:
                    out.append(t + tuple(u[k] for k in right_only_idx))
            i, j = i2, j2
    return out, out_schema
