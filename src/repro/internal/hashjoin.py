"""In-memory hash joins — the correctness oracle.

These routines compute natural joins entirely in memory with classic
hash joins.  They serve two roles in the reproduction:

* the *oracle* every external-memory algorithm is tested against
  (:func:`join_query`), and
* the internal-memory column of Table 1 for pairwise plans.

Results are returned as canonical *assignments*: a sorted tuple of
``(attribute, value)`` pairs covering all attributes of the joined
relations.  For set-semantics relations (no duplicate tuples) an
assignment uniquely identifies the participating tuple combination, so
assignment sets compare exactly against the emit-model output.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.query.hypergraph import JoinQuery

Table = list[tuple]
Schemas = Mapping[str, Sequence[str]]
Assignment = tuple[tuple[str, object], ...]


def hash_join(left: Table, left_schema: Sequence[str], right: Table,
              right_schema: Sequence[str]) -> tuple[Table, tuple[str, ...]]:
    """Natural join of two tables; cross product when no shared attrs.

    Returns the joined table and its combined schema (left attributes
    followed by the right-only attributes).
    """
    left_schema = tuple(left_schema)
    right_schema = tuple(right_schema)
    shared = [a for a in left_schema if a in right_schema]
    right_only = [a for a in right_schema if a not in left_schema]
    out_schema = left_schema + tuple(right_only)
    r_shared_idx = [right_schema.index(a) for a in shared]
    r_only_idx = [right_schema.index(a) for a in right_only]
    l_shared_idx = [left_schema.index(a) for a in shared]

    index: dict[tuple, list[tuple]] = defaultdict(list)
    for t in right:
        index[tuple(t[i] for i in r_shared_idx)].append(t)

    out: Table = []
    for t in left:
        key = tuple(t[i] for i in l_shared_idx)
        for u in index.get(key, ()):
            out.append(t + tuple(u[i] for i in r_only_idx))
    return out, out_schema


def join_query(query: JoinQuery, data: Mapping[str, Table],
               schemas: Schemas) -> set[Assignment]:
    """All join results of ``query`` on ``data`` as canonical assignments.

    Joins edges in an order that keeps the accumulated relation
    connected where possible (to contain intermediate blow-up a little);
    correctness does not depend on the order.
    """
    names = list(query.edge_names)
    if not names:
        return {()}
    order = _connected_order(query, names)
    first = order[0]
    acc, acc_schema = list(data[first]), tuple(schemas[first])
    for e in order[1:]:
        acc, acc_schema = hash_join(acc, acc_schema, list(data[e]),
                                    schemas[e])
    return {canonical(t, acc_schema) for t in acc}


def join_count(query: JoinQuery, data: Mapping[str, Table],
               schemas: Schemas) -> int:
    """``|Q(R)|`` under set semantics."""
    return len(join_query(query, data, schemas))


def canonical(t: tuple, schema: Sequence[str]) -> Assignment:
    """The sorted ``(attribute, value)`` form of one result tuple."""
    return tuple(sorted(zip(schema, t)))


def project_assignments(results: set[Assignment],
                        attributes: set[str]) -> set[Assignment]:
    """Project canonical assignments onto a subset of attributes.

    Implements the paper's *partial join* ``Q(R, S)`` — the projection
    of the full join onto the attributes of ``S`` (Section 1.4).
    """
    return {tuple(p for p in a if p[0] in attributes) for a in results}


def _connected_order(query: JoinQuery, names: list[str]) -> list[str]:
    remaining = set(names)
    order = [names[0]]
    remaining.discard(names[0])
    attrs = set(query.edges[names[0]])
    while remaining:
        nxt = next((e for e in sorted(remaining)
                    if query.edges[e] & attrs), None)
        if nxt is None:
            nxt = sorted(remaining)[0]
        order.append(nxt)
        remaining.discard(nxt)
        attrs |= query.edges[nxt]
    return order
