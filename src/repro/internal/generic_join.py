"""The worst-case optimal generic join (NPRR / Leapfrog style).

Table 1's internal-memory column is achieved by the unified algorithm
of Ngo–Porat–Ré–Rudra and Veldhuizen, surveyed by Ngo, Ré and Rudra
[10]: eliminate one attribute at a time, intersecting the candidate
value sets contributed by every relation containing that attribute
(iterating the smallest set).  Its running time is ``Õ(AGM(Q))`` — the
bound our benchmark ``bench_agm_internal`` checks empirically.

The paper's point of departure (Section 1) is that this algorithm
relies on hash-table lookups and therefore "does not work well in
external memory" — it is included here purely as the internal baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from repro.internal.hashjoin import Assignment, Table
from repro.query.hypergraph import JoinQuery

Schemas = Mapping[str, Sequence[str]]


def generic_join(query: JoinQuery, data: Mapping[str, Table],
                 schemas: Schemas,
                 attribute_order: Sequence[str] | None = None
                 ) -> set[Assignment]:
    """All join results via attribute-at-a-time elimination.

    ``attribute_order`` defaults to sorted attribute names; any order is
    correct (the classic analysis holds for all orders up to query-size
    constants).
    """
    attrs = (list(attribute_order) if attribute_order is not None
             else sorted(query.attributes))
    if set(attrs) != set(query.attributes):
        raise ValueError("attribute_order must cover exactly the query's "
                         "attributes")
    positions = {e: {a: list(schemas[e]).index(a) for a in query.edges[e]}
                 for e in query.edges}
    tables = {e: list(data[e]) for e in query.edges}
    results: set[Assignment] = set()
    _recurse(query, tables, positions, attrs, {}, results)
    return results


def _recurse(query: JoinQuery, tables: dict[str, Table],
             positions: dict[str, dict[str, int]], attrs: list[str],
             bound: dict[str, object], results: set[Assignment]) -> None:
    if not attrs:
        if all(tables[e] for e in tables) or not tables:
            results.add(tuple(sorted(bound.items())))
        return
    v, rest = attrs[0], attrs[1:]
    holders = [e for e in query.edges if v in query.edges[e]]
    if not holders:
        _recurse(query, tables, positions, rest, bound, results)
        return
    # Intersect candidate values, seeded from the smallest relation.
    value_lists = []
    for e in holders:
        idx = positions[e][v]
        value_lists.append({t[idx] for t in tables[e]})
    candidates = set.intersection(*sorted(value_lists, key=len))
    for a in sorted(candidates, key=repr):
        narrowed = dict(tables)
        ok = True
        for e in holders:
            idx = positions[e][v]
            sub = [t for t in tables[e] if t[idx] == a]
            if not sub:
                ok = False
                break
            narrowed[e] = sub
        if not ok:
            continue
        bound[v] = a
        _recurse(query, narrowed, positions, rest, bound, results)
        del bound[v]


def generic_join_count(query: JoinQuery, data: Mapping[str, Table],
                       schemas: Schemas) -> int:
    """``|Q(R)|`` computed by generic join."""
    return len(generic_join(query, data, schemas))


def build_value_index(table: Table, position: int) -> dict[object, Table]:
    """Hash index from attribute value to matching tuples.

    The in-memory retrieval step the paper singles out as the reason
    these algorithms do not translate to external memory.
    """
    index: dict[object, Table] = defaultdict(list)
    for t in table:
        index[t[position]].append(t)
    return dict(index)
