"""Yannakakis' algorithm in internal memory (the 1981 baseline).

Section 1 of the paper recalls that Yannakakis' algorithm evaluates any
acyclic join in ``O(N + |Q(R)|)`` time (instance optimal in internal
memory): fully reduce the instance with a two-pass semijoin program,
then perform pairwise joins along the join tree — on reduced instances
every intermediate result has at most ``|Q(R)|`` rows.

This is the internal-memory reference implementation; the
external-memory rendering that writes its intermediates to disk — and
is provably a factor ``M`` off optimal in the emit model (Section 1.2)
— lives in :mod:`repro.core.yannakakis_em`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.internal.hashjoin import Assignment, Table, canonical, hash_join
from repro.query.hypergraph import JoinQuery
from repro.query.reduce import elimination_order, full_reduce

Schemas = Mapping[str, Sequence[str]]


def yannakakis(query: JoinQuery, data: Mapping[str, Table],
               schemas: Schemas) -> set[Assignment]:
    """Full reduction followed by joins along the elimination tree.

    Joining in reverse elimination order re-attaches each ear to an
    already-joined part it shares an attribute with, so (on the reduced
    instance) no intermediate exceeds the output size.
    """
    reduced = full_reduce(query, data, schemas)
    steps = elimination_order(query)
    if not steps:
        return {()}
    root = steps[-1].edge
    acc, acc_schema = list(reduced[root]), tuple(schemas[root])
    for step in reversed(steps[:-1]):
        acc, acc_schema = hash_join(acc, acc_schema,
                                    list(reduced[step.edge]),
                                    schemas[step.edge])
    return {canonical(t, acc_schema) for t in acc}


def yannakakis_with_stats(query: JoinQuery, data: Mapping[str, Table],
                          schemas: Schemas
                          ) -> tuple[set[Assignment], dict[str, int]]:
    """As :func:`yannakakis`, also reporting intermediate-size stats.

    The stats substantiate the internal-memory optimality claim: on
    fully reduced instances ``max_intermediate <= |Q(R)|``.
    """
    reduced = full_reduce(query, data, schemas)
    steps = elimination_order(query)
    if not steps:
        return {()}, {"max_intermediate": 0, "output": 0}
    root = steps[-1].edge
    acc, acc_schema = list(reduced[root]), tuple(schemas[root])
    max_intermediate = len(acc)
    for step in reversed(steps[:-1]):
        acc, acc_schema = hash_join(acc, acc_schema,
                                    list(reduced[step.edge]),
                                    schemas[step.edge])
        max_intermediate = max(max_intermediate, len(acc))
    results = {canonical(t, acc_schema) for t in acc}
    return results, {"max_intermediate": max_intermediate,
                     "output": len(results)}
