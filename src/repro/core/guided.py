"""Paper-guided peel strategies (single-run alternatives to best-branch).

Section 7.2 prescribes the lollipop peel order explicitly: "When
``N0 ≤ Nn``, we peel off the star with ``e_n`` as the core first,
otherwise we peel the star with ``e_0`` as the core."  In Algorithm 2
terms that is a leaf priority: the stick-star's petal (the tip) before
the core's petals, or the other way around.  Dumbbells generalize the
same idea (Section 7.3 peels the star at ``e_m`` first).

These choosers run Algorithm 2 *once*, versus
:func:`~repro.core.acyclic.acyclic_join_best`'s exhaustive branch
exploration; tests check they land near the best branch on the
Section 7 constructions.
"""

from __future__ import annotations

from repro.core.acyclic import Chooser
from repro.data.instance import Instance
from repro.query.classify import find_leaves
from repro.query.hypergraph import JoinQuery
from repro.query.shapes import detect_dumbbell, detect_lollipop


def priority_chooser(priority: list[str]) -> Chooser:
    """Peel the first available leaf from a fixed priority list."""

    def choose(query: JoinQuery, instance: Instance) -> str:
        leaves = find_leaves(query)
        metrics = next(iter(instance.values())).device.metrics
        for e in priority:
            if e in leaves:
                metrics.counter("guided.priority_hits").inc()
                return e
        metrics.counter("guided.priority_fallbacks").inc()
        return leaves[0]

    return choose


def lollipop_paper_chooser(query: JoinQuery,
                           instance: Instance) -> Chooser:
    """The Section 7.2 rule, materialized as a leaf priority.

    ``N0 ≤ Nn`` → tip first (the stick-star's petal); otherwise the
    core's petals first.  Falls back to the default order when the
    query is not a lollipop.
    """
    info = detect_lollipop(query)
    if info is None:
        raise ValueError("query is not a lollipop")
    n0 = len(instance[info.core])
    nn = len(instance[info.stick])
    petals = sorted(info.petals)
    if n0 <= nn:
        priority = [info.tip] + petals
    else:
        priority = petals + [info.tip]
    return priority_chooser(priority)


def dumbbell_paper_chooser(query: JoinQuery,
                           instance: Instance) -> Chooser:
    """Section 7.3 / Appendix A.4: peel the star at ``e_m`` first.

    Peeling the second star first means its petals take priority; the
    bar then acts as the first star's extended petal.
    """
    info = detect_dumbbell(query)
    if info is None:
        raise ValueError("query is not a dumbbell")
    # Mirror the lollipop rule on the two cores' sizes: peel the
    # *larger*-core star's petals later.
    n1 = len(instance[info.core1])
    n2 = len(instance[info.core2])
    first, second = ((info.petals2, info.petals1) if n2 <= n1
                     else (info.petals1, info.petals2))
    return priority_chooser(sorted(first) + sorted(second))
