"""External-memory triangle join — Table 1's cyclic prior-work row.

The paper's Table 1 lists the triangle query ``C3`` with external-memory
cost ``√(N1·N2·N3 / M) / B`` (for equal sizes ``N^{3/2}/(√M · B)``),
optimal when all relations have equal size [7, 12].  Although the
paper's own contribution is acyclic joins, the triangle is its central
point of comparison, so the reproduction includes the classic
grid-partitioning algorithm achieving that bound:

hash each attribute's domain into ``p`` buckets with
``p = ⌈√(3N/M)⌉``; subproblem ``(i, j, k)`` receives the bucket-
restricted relations ``R1(a∈i, b∈j)``, ``R2(b∈j, c∈k)``,
``R3(a∈i, c∈k)`` — about ``N/p²`` tuples each — and is solved in
memory.  Partitioning writes each relation once per bucket dimension
(``p`` copies, ``p·N/B`` I/Os) and the ``p³`` subproblems load
``3·N/p² ≈ M`` tuples each, for ``p³·M/B = O(N^{3/2}/(√M·B))`` I/Os.

Heavily skewed buckets (a value hotter than ``N/p``) can overflow the
per-cell memory budget; the implementation then falls back to a
blocked nested loop within the cell, which preserves correctness (the
equal-size optimality claim of [7, 12] is for the balanced case, and
the fallback's extra cost is measured, not hidden).

Emit model throughout: results are triples of participating tuples,
never written.
"""

from __future__ import annotations

from repro.core.emit import Emitter
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.em.loaders import load_chunks
from repro.query.hypergraph import JoinQuery

#: Phase names this module attributes I/O to (emlint EM006).
PHASES = ("partition",)


def detect_triangle(query: JoinQuery) -> tuple[str, str, str] | None:
    """Recognize ``C3``: three binary edges pairwise sharing one attr.

    Returns edge names ordered so that edge 0 and 1 share one
    attribute, 1 and 2 another, 2 and 0 the third; or ``None``.
    """
    names = query.edge_names
    if len(names) != 3:
        return None
    if any(len(query.edges[e]) != 2 for e in names):
        return None
    e1, e2, e3 = names
    pairs = [(e1, e2), (e2, e3), (e3, e1)]
    shared = []
    for a, b in pairs:
        common = query.edges[a] & query.edges[b]
        if len(common) != 1:
            return None
        shared.append(next(iter(common)))
    if len(set(shared)) != 3:
        return None
    if query.attributes != set(shared):
        return None
    return (e1, e2, e3)


# em-cost: sqrt(N^3/M)/B + N/B -- Table 1's C3 row: p³ grid cells of
# ≈M tuples each, p = ⌈√(3N/M)⌉, plus the partitioning scans
def triangle_join(query: JoinQuery, instance: Instance, emitter: Emitter,
                  *, partitions: int | None = None) -> None:
    """Grid-partitioned triangle join in ``O(N^{3/2}/(√M·B))`` I/Os.

    ``partitions`` overrides the computed grid width ``p`` (testing
    hook).  Requires a ``C3``-shaped query.
    """
    order = detect_triangle(query)
    if order is None:
        raise ValueError("triangle_join requires a triangle (C3) query")
    e1, e2, e3 = order
    r1, r2, r3 = instance[e1], instance[e2], instance[e3]
    device = r1.device
    M = device.M

    # Attribute roles: a = shared(e1, e3), b = shared(e1, e2),
    # c = shared(e2, e3).
    a = next(iter(query.edges[e1] & query.edges[e3]))
    b = next(iter(query.edges[e1] & query.edges[e2]))
    c = next(iter(query.edges[e2] & query.edges[e3]))

    n = max(len(r1), len(r2), len(r3), 1)
    if partitions is None:
        p = max(1, int((3 * n / M) ** 0.5) + 1)
    else:
        p = max(1, partitions)

    # Partition each relation along its two attributes' buckets:
    # p² cells per relation, each written once (p·N/B total per
    # dimension pair since every tuple lands in exactly one cell).
    with device.span("triangle_join", kind="algorithm", n=n, p=p):
        with device.phases.phase("partition"):
            cells1 = _partition(r1, a, b, p)  # R1[a-bucket][b-bucket]
            cells2 = _partition(r2, b, c, p)  # R2[b-bucket][c-bucket]
            cells3 = _partition(r3, a, c, p)  # R3[a-bucket][c-bucket]

        with device.span("solve_cells", cells=p ** 3):
            # em-loop-bound: sqrt(N/M) -- the grid width p
            for i in range(p):          # a-bucket
                # em-loop-bound: sqrt(N/M) -- the grid width p
                for j in range(p):      # b-bucket
                    cell1 = cells1[i][j]
                    if not len(cell1):
                        continue
                    # em-loop-bound: sqrt(N/M) -- the grid width p
                    for k in range(p):  # c-bucket
                        cell2 = cells2[j][k]
                        cell3 = cells3[i][k]
                        if not len(cell2) or not len(cell3):
                            continue
                        _solve_cell(cell1, cell2, cell3, a, b, c, M,
                                    emitter)


# em-cost: amortized N/B -- one scan of the input plus one buffered
# write per tuple (each tuple lands in exactly one cell); the per-cell
# writers live in nested lists, invisible to static type resolution
def _partition(rel: Relation, attr_x: str, attr_y: str,
               p: int) -> list[list[Relation]]:
    """Split ``rel`` into a ``p × p`` grid of bucket-restricted cells.

    One scan of the input plus one write per tuple (each tuple belongs
    to exactly one cell); cell files keep the relation's schema.
    """
    device = rel.device
    ix = rel.schema.index(attr_x)
    iy = rel.schema.index(attr_y)
    writers = []
    files = []
    for gx in range(p):
        row_w, row_f = [], []
        for gy in range(p):
            f = device.new_file(f"{rel.name}.cell{gx}_{gy}")
            row_f.append(f)
            row_w.append(f.writer())
        writers.append(row_w)
        files.append(row_f)
    for t in rel.data.scan():
        gx = hash(t[ix]) % p
        gy = hash(t[iy]) % p
        writers[gx][gy].append(t)
    cells = []
    for gx in range(p):
        row = []
        for gy in range(p):
            writers[gx][gy].close()
            row.append(Relation(schema=rel.schema,
                                data=files[gx][gy].whole()))
        cells.append(row)
    return cells


# em-cost: amortized M/B -- a balanced cell holds ≈M tuples across its
# three relations and is loaded once; skew-overflowed cells fall back
# to chunked re-joins whose extra cost is measured, not hidden
def _solve_cell(cell1: Relation, cell2: Relation, cell3: Relation,
                a: str, b: str, c: str, M: int,
                emitter: Emitter) -> None:
    """Join one grid cell.

    Balanced cells fit in memory and are solved with one load each;
    skew-overflowed cells fall back to a blocked nested loop over the
    largest relation.
    """
    total = len(cell1) + len(cell2) + len(cell3)
    cell1.device.metrics.histogram("triangle.cell_tuples").observe(total)
    if total <= 2 * M:
        _in_memory(cell1, cell2, cell3, a, b, c, emitter)
        return
    # Fallback: chunk the largest cell relation, keep the other two
    # streamed per chunk.
    rels = sorted((cell1, cell2, cell3), key=len, reverse=True)
    big = rels[0]
    device = big.device
    for chunk in load_chunks(big.data, M):
        sub = big.rewrite(chunk, label="chunk")
        # rewind: sub is on-disk; re-join in memory with streams
        parts = {id(big): sub}
        r1 = parts.get(id(cell1), cell1)
        r2 = parts.get(id(cell2), cell2)
        r3 = parts.get(id(cell3), cell3)
        _in_memory(r1, r2, r3, a, b, c, emitter)


def _in_memory(cell1: Relation, cell2: Relation, cell3: Relation,
               a: str, b: str, c: str, emitter: Emitter) -> None:
    """Load all three cells and enumerate triangles hash-style."""
    device = cell1.device
    # Charge the gauge *before* materializing: tuple counts are free
    # catalog metadata, and holding first keeps every resident tuple
    # inside the charged region (emlint EM002).
    with device.memory.hold(len(cell1) + len(cell2) + len(cell3)):
        t1 = list(cell1.data.scan())
        t2 = list(cell2.data.scan())
        t3 = list(cell3.data.scan())
        i1a = cell1.schema.index(a)
        i1b = cell1.schema.index(b)
        i2b = cell2.schema.index(b)
        i2c = cell2.schema.index(c)
        i3a = cell3.schema.index(a)
        i3c = cell3.schema.index(c)
        by_b: dict[object, list[tuple]] = {}
        for t in t2:
            by_b.setdefault(t[i2b], []).append(t)
        by_ac: dict[tuple, list[tuple]] = {}
        for t in t3:
            by_ac.setdefault((t[i3a], t[i3c]), []).append(t)
        name1, name2, name3 = cell1.name, cell2.name, cell3.name
        for u in t1:
            for v in by_b.get(u[i1b], ()):
                for w in by_ac.get((u[i1a], v[i2c]), ()):
                    emitter.emit({name1: u, name2: v, name3: w})
