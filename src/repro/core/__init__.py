"""External-memory join algorithms: the paper's contribution and baselines.

Contents map to the paper as follows:

* :mod:`repro.core.twoway` — Section 3's two-relation joins;
* :mod:`repro.core.line3` — Algorithm 1 (3-relation line join);
* :mod:`repro.core.acyclic` — Algorithm 2 (``AcyclicJoin``) plus the
  peel-plan machinery standing in for its nondeterminism;
* :mod:`repro.core.line5` — Algorithm 4 (unbalanced ``L5``);
* :mod:`repro.core.line7` — Algorithm 5 and the ``L6``/``L8``
  reductions of Section 6.3;
* :mod:`repro.core.yannakakis_em` — the pairwise baseline the paper
  departs from (Section 1.2);
* :mod:`repro.core.reducer_em` — the external-memory full reducer;
* :mod:`repro.core.planner` — shape-based dispatch (the public API).
"""

from repro.core.acyclic import (BestRun, Plan, PlanRun, acyclic_join,
                                acyclic_join_best, clone_instance,
                                end_chooser, enumerate_plans,
                                first_leaf_chooser, largest_leaf_chooser,
                                plan_chooser, smallest_leaf_chooser)
from repro.core.emit import (AssignmentEmitter, CallbackEmitter,
                             CollectingEmitter, CountingEmitter, Emitter)
from repro.core.guided import (dumbbell_paper_chooser,
                               lollipop_paper_chooser, priority_chooser)
from repro.core.line3 import line3_join
from repro.core.line5 import line5_unbalanced_join
from repro.core.line7 import (line6_unbalanced_join, line7_cover11_join,
                              line7_unbalanced_join, line8_join,
                              line_join_auto, nlj_outer)
from repro.core.lw import detect_lw, lw_join, lw_query
from repro.core.planner import (ExecutionReport, estimate_memory_need,
                                execute)
from repro.core.reducer_em import full_reduce_em
from repro.core.trace import RecursionTrace, TraceEvent
from repro.core.triangle import detect_triangle, triangle_join
from repro.core.twoway import nested_loop_join, sort_merge_join
from repro.core.yannakakis_em import yannakakis_em

__all__ = [
    "acyclic_join", "acyclic_join_best", "enumerate_plans", "plan_chooser",
    "first_leaf_chooser", "smallest_leaf_chooser", "largest_leaf_chooser",
    "end_chooser", "clone_instance", "BestRun", "Plan", "PlanRun",
    "Emitter", "CountingEmitter", "CollectingEmitter", "AssignmentEmitter",
    "CallbackEmitter",
    "line3_join", "line5_unbalanced_join", "line6_unbalanced_join",
    "line7_unbalanced_join", "line7_cover11_join", "line8_join",
    "line_join_auto", "nlj_outer",
    "nested_loop_join", "sort_merge_join", "yannakakis_em",
    "full_reduce_em", "execute", "ExecutionReport", "estimate_memory_need",
    "triangle_join", "detect_triangle",
    "priority_chooser", "lollipop_paper_chooser", "dumbbell_paper_chooser",
    "RecursionTrace", "TraceEvent",
    "lw_join", "lw_query", "detect_lw",
]
