"""Algorithm 1: the 3-relation line join (Section 3).

``R1(v1,v2) ⋈ R2(v2,v3) ⋈ R3(v3,v4)`` in ``Õ(N1·N3/(MB))`` I/Os
(Theorem 1), matching the external-memory counterpart of the AGM bound
``N1·N3`` — the naive 3-deep nested loop would pay ``N1·N2·N3/(M²B)``.

Heavy values ``a`` of ``v2`` in ``R1`` (line 4–7): materialize
``T_a = R2|_{v2=a} ⋈ R3`` by a merge join — every tuple of
``R2|_{v2=a}`` has a distinct ``v3``, so no value of ``v3`` is heavy
and the merge is one pass; ``|T_a| ≤ N3`` so writing it is affordable —
then block-nested-loop ``R1|_{v2=a}`` against ``T_a``.

Light values (line 8–12): load ``R1`` by ``v2`` one memory chunk ``M1``
at a time, semijoin ``R2(M1) = R2 ⋉ M1`` (one scan of ``R2`` across
all chunks), and sort-merge ``R2(M1) ⋈ R3``, matching results back to
``M1`` in memory.

Emitted results carry all three participating tuples (emit model).
"""

from __future__ import annotations

from repro.core.emit import CallbackEmitter, Emitter, emit_block
from repro.core.twoway import sort_merge_join
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.em.loaders import (group_boundaries, load_chunks,
                              load_light_chunks, split_heavy_light)
from repro.query.hypergraph import JoinQuery
from repro.query.shapes import detect_line


# em-cost: N^2/(M*B) + N/B -- Theorem 1: Õ(N1·N3/(MB)) plus the
# sorting and scanning passes the Õ absorbs
def line3_join(query: JoinQuery, instance: Instance,
               emitter: Emitter) -> None:
    """Run Algorithm 1 on a 3-relation line join."""
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 3:
        raise ValueError("line3_join requires a 3-relation line query")
    e1, e2, e3 = chain.edges
    v2, v3 = chain.join_attrs
    _line3(instance[e1], instance[e2], instance[e3], v2, v3, emitter)


def _line3(r1: Relation, r2: Relation, r3: Relation, v2: str, v3: str,
           emitter: Emitter) -> None:
    device = r1.device
    M = device.M

    with device.span("line3_join", kind="algorithm",
                     n1=len(r1), n2=len(r2), n3=len(r3)):
        r1s = r1.sort_by(v2)
        r2s = r2.sort_by(v2)
        r3s = r3.sort_by(v3)

        groups1 = group_boundaries(r1s.data, r1s.key(v2))
        heavy, light = split_heavy_light(groups1, M)
        groups2 = {g.value: g
                   for g in group_boundaries(r2s.data, r2s.key(v2))}

        with device.span("heavy_values", groups=len(heavy)):
            _heavy_values(r1s, r2s, r3s, v2, v3, heavy, groups2, emitter)
        with device.span("light_values", groups=len(light)):
            _light_values(r1s, r2s, r3s, v2, v3, light, emitter)


def _heavy_values(r1s, r2s, r3s, v2, v3, heavy_groups, groups2,
                  emitter) -> None:
    """Lines 4-7: per heavy value, materialize R2|a ⋈ R3 then NLJ with R1|a."""
    device = r1s.device
    M = device.M
    # em-loop-bound: 1 -- Σ over heavy values a: the groups R2|a are
    # disjoint (Σ|R2|a| ≤ N2) and there are at most N1/M heavy values,
    # so the per-value merges and nested loops are counted together in
    # whole-input units (the Σ argument of Theorem 1)
    for g in heavy_groups:
        a = g.value
        g2 = groups2.get(a)
        if g2 is None:
            continue
        r2a = r2s.restrict(g2.start, g2.stop, attribute=v2, value=a)
        # R2|_{v2=a} ⋈ R3: no heavy v3 on the R2 side (values distinct),
        # so the instance-optimal two-way join is a single merge pass.
        r2a_by_v3 = r2a.sort_by(v3)
        t_file = device.new_file(f"T.{r2s.name}.{a}")
        writer = t_file.writer()

        def write_pair(result, _w=writer):
            _w.append((result[r2s.name], result[r3s.name]))

        # em-charges: N/B -- every tuple of R2|a has a distinct v3, so
        # no v3 value is heavy and the hybrid join is one merge pass
        sort_merge_join(r2a_by_v3, r3s, CallbackEmitter(write_pair))
        writer.close()

        seg1 = r1s.data.subsegment(g.start, g.stop)
        n1, n2, n3 = r1s.name, r2s.name, r3s.name
        for chunk in load_chunks(seg1, M):
            if device.block_mode:
                for block in t_file.scan_blocks():
                    emit_block(emitter, [
                        {n1: t1, n2: t2, n3: t3}
                        for t2, t3 in block
                        for t1 in chunk])  # all share v2 = a
            else:
                for t2, t3 in t_file.scan():
                    for t1 in chunk:  # all share v2 = a: cross-combine
                        emitter.emit({n1: t1, n2: t2, n3: t3})


def _light_values(r1s, r2s, r3s, v2, v3, light_groups, emitter) -> None:
    """Lines 8-12: chunked light values with one total scan of R2."""
    device = r1s.device
    M = device.M
    i1 = r1s.schema.index(v2)
    i2 = r2s.schema.index(v2)
    cursor2 = r2s.data.reader()

    for chunk in load_light_chunks(r1s.data, light_groups, M):
        values = {t[i1] for t in chunk}
        by_value: dict[object, list[tuple]] = {}
        for t in chunk:
            by_value.setdefault(t[i1], []).append(t)
        vmax = max(values)
        matched: list[tuple] = []
        if device.block_mode:
            # Block take-while: fetch the current page (charged exactly
            # as a peek would), consume the <= vmax prefix for free.
            # em-loop-bound: N/B -- one page per iteration; the cursor
            # is shared across chunks, so all take-whiles together make
            # one pass over R2
            while not cursor2.exhausted:
                page = cursor2.peek_page_block()
                taken = 0
                for t in page:
                    if t[i2] > vmax:
                        break
                    taken += 1
                    if t[i2] in values:
                        matched.append(t)
                cursor2.skip_to(cursor2.position + taken)
                if taken < len(page):
                    break
        else:
            # em-loop-bound: N -- one tuple per iteration of the shared
            # cursor's single pass over R2
            while not cursor2.exhausted and cursor2.peek()[i2] <= vmax:
                t = cursor2.next()
                if t[i2] in values:
                    matched.append(t)
        if not matched:
            continue
        r2m = r2s.rewrite(matched, label="sj", sorted_on=v2)
        r2m_by_v3 = r2m.sort_by(v3)

        def match_back(result, _by_value=by_value, _i2=i2):
            t2 = result[r2s.name]
            t3 = result[r3s.name]
            for t1 in _by_value.get(t2[_i2], ()):
                emitter.emit({r1s.name: t1, r2s.name: t2, r3s.name: t3})

        # em-charges: N/B -- |R2(M1)| ≤ 2M with no heavy v3 value, so
        # the hybrid join is one merge pass over R2(M1) and R3
        sort_merge_join(r2m_by_v3, r3s, CallbackEmitter(match_back))
