"""External-memory Yannakakis — the pairwise baseline (Section 1.2).

The straightforward port of Yannakakis' algorithm observed in [11]:
fully reduce, then perform a series of pairwise joins, writing every
intermediate result to disk.  Its cost is ``Õ(|Q(R)|/B)`` (plus linear
terms), which is only optimal when results must be written out.  In the
*emit* model it is worse than the optimal algorithm by a factor up to
``M`` already for two relations — the gap benchmark
``bench_yannakakis_gap`` measures.

Intermediates are materialized as wide relations whose schema is the
union of the joined attributes; participating input tuples are
recovered at the end by projection (relations are sets, so projections
identify the original tuples uniquely), keeping the emit interface
identical to the optimal algorithm's.
"""

from __future__ import annotations

from repro.core.emit import CallbackEmitter, Emitter
from repro.core.reducer_em import full_reduce_em
from repro.core.twoway import sort_merge_join
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.query.hypergraph import JoinQuery, require_berge_acyclic
from repro.query.reduce import elimination_order


# em-cost: amortized OUT/B + N/B * log(N/M) -- the Õ(|Q(R)|/B)
# baseline of [11]: with reduced inputs every pairwise intermediate is
# bounded by the final output, so each of the (query-constant) joins
# sorts and rewrites at most OUT + N tuples
def yannakakis_em(query: JoinQuery, instance: Instance, emitter: Emitter,
                  *, reduce_first: bool = True,
                  materialize_output: bool = True) -> None:
    """Pairwise external-memory Yannakakis with materialized intermediates.

    Joins follow the reverse ear-elimination order, so each pairwise
    join shares an attribute with the accumulated intermediate (or is a
    cross product for disconnected queries).  Every intermediate is
    written to disk (charged), and — matching the ``Õ(|Q(R)|/B)``
    algorithm of [11] the paper measures against — so is the final
    result (``materialize_output=True``).  That write is exactly what
    the emit model makes unnecessary, and is the source of the
    factor-``M`` gap of Section 1.2; pass ``materialize_output=False``
    for the emit-only variant.
    """
    require_berge_acyclic(query)
    steps = elimination_order(query)
    if not steps:
        return
    device = instance[steps[0].edge].device
    with device.span("yannakakis_em", kind="algorithm",
                     edges=len(query.edges)):
        inst = full_reduce_em(query, instance) if reduce_first else instance
        order = [s.edge for s in reversed(steps)]
        schemas = {e: inst[e].schema for e in query.edges}

        acc = inst[order[0]]
        for i, e in enumerate(order[1:], start=1):
            last = i == len(order) - 1
            if last:
                emit_pair = _final_emit(emitter, query, schemas, acc,
                                        inst[e], materialize_output)
                _pairwise(acc, inst[e], None, emit_pair)
                emit_pair.close()
            else:
                acc = _pairwise(acc, inst[e], f"I{i}", None)
        if len(order) == 1:
            for t in acc.data.scan():
                emitter.emit({order[0]: t})


def _pairwise(left: Relation, right: Relation, out_label: str | None,
              emit_fn) -> Relation | None:
    """One pairwise join; materializes when ``out_label`` is given."""
    out_schema = _joined_schema(left, right, out_label or "final")
    l_attrs = left.schema.attributes
    r_extra = [a for a in right.schema.attributes if a not in left.schema]
    r_idx = [right.schema.index(a) for a in r_extra]

    if out_label is None:
        def on_pair(result):
            emit_fn(result[left.name], result[right.name])
        sort_merge_join(left, right, CallbackEmitter(on_pair))
        return None

    device = left.device
    out_file = device.new_file(out_label)
    writer = out_file.writer()

    def on_pair(result, _w=writer):
        lt, rt = result[left.name], result[right.name]
        _w.append(lt + tuple(rt[i] for i in r_idx))

    sort_merge_join(left, right, CallbackEmitter(on_pair))
    writer.close()
    return Relation(schema=out_schema, data=out_file.whole())


def _joined_schema(left: Relation, right: Relation,
                   name: str) -> RelationSchema:
    attrs = left.schema.attributes + tuple(
        a for a in right.schema.attributes if a not in left.schema)
    return RelationSchema(name, attrs)


class _final_emit:
    """Project final wide rows back to per-edge tuples; optionally write.

    Callable as ``emit_pair(acc_tuple, last_tuple)``; with
    ``materialize`` set, every wide row is also appended to an output
    file (the [11] behaviour), charged to the device.
    """

    def __init__(self, emitter: Emitter, query: JoinQuery, schemas,
                 acc: Relation, last: Relation, materialize: bool) -> None:
        self._emitter = emitter
        self._acc_schema = acc.schema
        self._last_schema = last.schema
        wide_attrs = acc.schema.attributes + tuple(
            a for a in last.schema.attributes if a not in acc.schema)
        position = {a: i for i, a in enumerate(wide_attrs)}
        self._plan = {e: [position[a] for a in schemas[e].attributes]
                      for e in query.edges}
        self._writer = None
        if materialize:
            out = acc.device.new_file("Q_out")
            self._writer = out.writer()

    def __call__(self, acc_t: tuple, last_t: tuple) -> None:
        extra = tuple(v for a, v in zip(self._last_schema.attributes,
                                        last_t)
                      if a not in self._acc_schema)
        wide = acc_t + extra
        if self._writer is not None:
            self._writer.append(wide)
        self._emitter.emit({e: tuple(wide[i] for i in idxs)
                            for e, idxs in self._plan.items()})

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
