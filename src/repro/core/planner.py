"""The planner: one entry point dispatching to the paper's algorithms.

:func:`execute` is the library's main public API.  It checks
Berge-acyclicity, fully reduces the instance (the paper's standing
assumption, Section 1.2), classifies the query's shape, and dispatches:

=================  ========================================================
shape              algorithm
=================  ========================================================
single relation    scan + emit
two relations      instance-optimal sort-merge hybrid (Section 3)
line join          the Section 6 dispatcher (Algorithms 1/2/4/5 +
                   reductions) per the balancedness regime
star / lollipop /  Algorithm 2, best peel branch (Sections 5, 7.2, 7.3)
dumbbell
general acyclic    Algorithm 2, best peel branch (Theorems 2–3)
=================  ========================================================

The returned :class:`ExecutionReport` records the shape, the algorithm
label, and the I/O charged to the instance's device during execution
(reduction I/O reported separately).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.acyclic import acyclic_join_best
from repro.core.emit import Emitter
from repro.core.line7 import line_join_auto
from repro.core.reducer_em import full_reduce_em
from repro.core.twoway import sort_merge_join
from repro.data.instance import Instance
from repro.query.hypergraph import JoinQuery, require_berge_acyclic
from repro.query.shapes import classify_shape


@dataclass(frozen=True)
class ExecutionReport:
    """What the planner did and what it cost."""

    shape: str
    algorithm: str
    reduce_reads: int
    reduce_writes: int
    reads: int
    writes: int

    @property
    def io(self) -> int:
        """Join I/O (excluding reduction)."""
        return self.reads + self.writes

    @property
    def total_io(self) -> int:
        """Join plus reduction I/O."""
        return self.io + self.reduce_reads + self.reduce_writes


def estimate_memory_need(query: JoinQuery, *, M: int, B: int) -> int:
    """Planner-estimated peak memory a query needs under ``(M, B)``.

    This is what a query *declares* to the service's admission
    controller.  The paper's algorithms are designed to fill the whole
    memory — sorting and chunked loads size themselves to ``M`` — so
    every genuine join needs its full budget; only the degenerate
    shapes are cheaper: an empty query touches nothing and a
    single-relation scan streams one block at a time.
    """
    shape = classify_shape(query)
    if shape == "empty":
        return 0
    if shape == "single":
        return min(B, M)
    return M


# em-cost: N^6/(M^5*B) + N/B -- the worst dispatch target (the line
# dispatcher's L8 bound); each shape's own declaration gives its
# tighter form, and the full reducer adds N/B*log(N/M)
def execute(query: JoinQuery, instance: Instance, emitter: Emitter, *,
            reduce_first: bool = True, plan_limit: int = 16,
            strategy: str = "best-branch") -> ExecutionReport:
    """Plan and run ``query`` over ``instance``, emitting every result.

    ``reduce_first`` runs the external-memory full reducer before
    joining (skip it only for instances known to be reduced).
    ``plan_limit`` caps the branch exploration of Algorithm 2.
    ``strategy`` selects how Algorithm 2's nondeterminism is resolved
    where it applies: ``"best-branch"`` explores every peel plan (the
    round-robin guarantee); ``"guided"`` runs once using the paper's
    explicit peel rules (Section 7.2's ``N0`` vs ``Nn`` comparison on
    lollipops, the star-at-``e_m``-first order on dumbbells, and the
    greedy smallest-leaf heuristic elsewhere).
    """
    require_berge_acyclic(query)
    devices = {rel.device for rel in instance.values()}
    if len(devices) != 1:
        raise ValueError("instance spans multiple devices")
    (device,) = devices

    with device.span("execute", kind="algorithm",
                     edges=len(query.edges)) as span:
        before = device.stats.snapshot()
        if reduce_first and len(query.edges) > 1:
            with device.span("full_reduce"):
                instance = full_reduce_em(query, instance)
        after_reduce = device.stats.snapshot()
        reduce_cost = after_reduce.delta_since(before)

        if strategy not in ("best-branch", "guided"):
            raise ValueError(f"unknown strategy {strategy!r}")
        shape = classify_shape(query)
        span.set("shape", shape)
        algorithm = _dispatch(shape, query, instance, emitter, plan_limit,
                              strategy)
        span.set("algorithm", algorithm)
        device.metrics.counter(f"planner.dispatch.{shape}").inc()

        join_cost = device.stats.delta_since(after_reduce)
    return ExecutionReport(shape=shape, algorithm=algorithm,
                           reduce_reads=reduce_cost.reads,
                           reduce_writes=reduce_cost.writes,
                           reads=join_cost.reads, writes=join_cost.writes)


def _dispatch(shape: str, query: JoinQuery, instance: Instance,
              emitter: Emitter, plan_limit: int, strategy: str) -> str:
    if shape == "empty":
        return "noop"
    if shape == "single":
        (e,) = query.edge_names
        for t in instance[e].data.scan():
            emitter.emit({e: t})
        return "scan"
    if shape == "two-relation":
        e1, e2 = query.edge_names
        sort_merge_join(instance[e1], instance[e2], emitter)
        return "two-way-sort-merge"
    if shape == "line":
        return line_join_auto(query, instance, emitter,
                              plan_limit=plan_limit)
    if shape in ("star", "lollipop", "dumbbell", "general-acyclic"):
        if strategy == "guided":
            chooser = _guided_chooser(shape, query, instance)
            from repro.core.acyclic import acyclic_join
            acyclic_join(query, instance, emitter, chooser=chooser)
            return f"algorithm-2-guided[{shape}]"
        acyclic_join_best(query, instance, emitter, limit=plan_limit)
        return f"algorithm-2-best-branch[{shape}]"
    raise ValueError(f"cannot execute shape {shape!r}")


def _guided_chooser(shape: str, query: JoinQuery, instance: Instance):
    from repro.core.acyclic import smallest_leaf_chooser
    from repro.core.guided import (dumbbell_paper_chooser,
                                   lollipop_paper_chooser)

    if shape == "lollipop":
        return lollipop_paper_chooser(query, instance)
    if shape == "dumbbell":
        return dumbbell_paper_chooser(query, instance)
    return smallest_leaf_chooser
