"""Loomis–Whitney joins in external memory — Table 1's ``LW_n`` row.

A Loomis–Whitney join ``LW_n`` has attributes ``v1..vn`` and ``n``
relations, each omitting exactly one attribute:
``e_i = {v1..vn} − {v_i}`` (the triangle is ``LW_3``).  Table 1 cites
Hu, Qiao and Tao [6] for the external-memory bound
``∏ (N_i/(MB))^{1/(n-1)} · MB``-style cost — for equal sizes
``(N/M)^{n/(n-1)} · M/B`` — with optimality unknown.

This module implements the natural generalization of the triangle's
grid algorithm: hash every attribute into ``p`` buckets with
``p = Θ((nN/M)^{1/(n-1)})``.  A *cell* is a bucket vector
``(j1, …, jn)``; relation ``e_i`` (which lacks ``v_i``) is replicated
across the ``p`` choices of ``j_i`` and restricted to the matching
buckets on its own attributes — expected ``N/p^{n-1}`` tuples per
cell.  Each of the ``p^n`` cells is then solved in memory, for a total
of ``p^n · M/B = O(N^{n/(n-1)}/(M^{1/(n-1)} B))`` I/Os on balanced
inputs, matching the cited bound's shape.  Badly skewed cells fall
back to chunked processing (correct; the extra cost is measured).

Emit model throughout.  ``n = 3`` reduces to
:mod:`repro.core.triangle` (kept separate for its role as the paper's
headline prior work); this module accepts any ``n ≥ 3``.
"""

from __future__ import annotations

import itertools

from repro.core.emit import Emitter
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.em.loaders import load_chunks
from repro.query.hypergraph import JoinQuery

#: Phase names this module attributes I/O to (emlint EM006).
PHASES = ("partition",)


def detect_lw(query: JoinQuery) -> tuple[list[str], dict[str, str]] | None:
    """Recognize ``LW_n``: each edge omits exactly one attribute.

    Returns ``(attribute order, {edge: omitted attribute})`` or
    ``None``.
    """
    attrs = sorted(query.attributes)
    n = len(attrs)
    if len(query.edges) != n or n < 3:
        return None
    omitted: dict[str, str] = {}
    seen: set[str] = set()
    for e in query.edge_names:
        missing = set(attrs) - query.edges[e]
        if len(missing) != 1:
            return None
        (m,) = missing
        if m in seen:
            return None
        seen.add(m)
        omitted[e] = m
    return attrs, omitted


# em-cost: amortized sqrt(N^3/M)/B + N/B -- the [6] bound
# (N/M)^{n/(n-1)}·M/B is maximized over n ≥ 3 at n = 3 (the triangle
# shape), since N/M ≥ 1; the grid width p = Θ((nN/M)^{1/(n-1)}) and
# the p^n cells of ≈M tuples are not expressible for symbolic n
def lw_join(query: JoinQuery, instance: Instance, emitter: Emitter, *,
            partitions: int | None = None) -> None:
    """Grid-partitioned Loomis–Whitney join.

    ``partitions`` overrides the computed grid width (testing hook).
    """
    detected = detect_lw(query)
    if detected is None:
        raise ValueError("lw_join requires a Loomis-Whitney query "
                         "(each relation omits exactly one attribute)")
    attrs, omitted = detected
    n = len(attrs)
    device = next(iter(instance.values())).device
    M = device.M
    n_max = max((len(instance[e]) for e in query.edges), default=1)
    if partitions is None:
        p = max(1, round((max(1, n * n_max / M)) ** (1.0 / (n - 1))))
    else:
        p = max(1, partitions)

    with device.span("lw_join", kind="algorithm", n=n, p=p):
        attr_pos = {a: i for i, a in enumerate(attrs)}
        # Partition each relation by the bucket vector of its own n-1
        # attributes: p^{n-1} cells per relation, one copy of each
        # tuple.
        cells: dict[str, dict[tuple[int, ...], Relation]] = {}
        with device.phases.phase("partition"):
            for e in query.edge_names:
                cells[e] = _partition(instance[e], attrs, p)

        # Enumerate the p^n grid; relation e_i contributes the cell
        # keyed by the bucket vector restricted to its attributes.
        for cell_vector in itertools.product(range(p), repeat=n):
            parts: list[tuple[str, Relation]] = []
            empty = False
            for e in query.edge_names:
                key = tuple(cell_vector[attr_pos[a]]
                            for a in sorted(query.edges[e]))
                rel = cells[e].get(key)
                if rel is None or not len(rel):
                    empty = True
                    break
                parts.append((e, rel))
            if empty:
                continue
            _solve_cell(query, parts, attrs, M, emitter)


# em-cost: amortized N/B -- one scan plus one buffered write per tuple
# (each tuple lands in exactly one cell); the per-cell writers live in
# a dict, invisible to static type resolution
def _partition(rel: Relation, attrs: list[str],
               p: int) -> dict[tuple[int, ...], Relation]:
    """Split a relation by its own attributes' bucket vector."""
    device = rel.device
    own = sorted(a for a in attrs if a in rel.schema)
    idxs = [rel.schema.index(a) for a in own]
    writers: dict[tuple[int, ...], object] = {}
    files: dict[tuple[int, ...], object] = {}
    for t in rel.data.scan():
        key = tuple(hash(t[i]) % p for i in idxs)
        if key not in writers:
            f = device.new_file(f"{rel.name}.cell{key}")
            files[key] = f
            writers[key] = f.writer()
        writers[key].append(t)
    out: dict[tuple[int, ...], Relation] = {}
    for key, w in writers.items():
        w.close()
        out[key] = Relation(schema=rel.schema,
                            data=files[key].whole())
    return out


# em-cost: amortized M/B -- a balanced cell holds ≈M tuples across its
# members and is loaded once; skew-overflowed cells fall back to
# chunked re-joins whose extra cost is measured, not hidden
def _solve_cell(query: JoinQuery, parts: list[tuple[str, Relation]],
                attrs: list[str], M: int, emitter: Emitter) -> None:
    """Join one cell: in memory if it fits, chunked otherwise."""
    total = sum(len(rel) for _, rel in parts)
    if total <= 2 * M:
        _in_memory(query, parts, attrs, emitter)
        return
    # Skew fallback: chunk the largest member; re-run the in-memory
    # join per chunk with the rest streamed.
    big_idx = max(range(len(parts)), key=lambda i: len(parts[i][1]))
    big_name, big_rel = parts[big_idx]
    for chunk in load_chunks(big_rel.data, M):
        sub = big_rel.rewrite(chunk, label="chunk")
        replaced = list(parts)
        replaced[big_idx] = (big_name, sub)
        _in_memory(query, replaced, attrs, emitter)


def _in_memory(query: JoinQuery, parts: list[tuple[str, Relation]],
               attrs: list[str], emitter: Emitter) -> None:
    """Backtracking join over memory-resident cell contents."""
    device = parts[0][1].device
    # Charge the gauge *before* materializing: tuple counts are free
    # catalog metadata, and holding first keeps every resident tuple
    # inside the charged region (emlint EM002).
    with device.memory.hold(sum(len(rel) for _, rel in parts)):
        # em-loop-bound: 1 -- one scan per cell member; the member
        # count is the query's edge count, a query-size constant
        tables = {e: list(rel.data.scan()) for e, rel in parts}
        schemas = {e: rel.schema for e, rel in parts}
        # Bind attributes one at a time, narrowing candidate tuples —
        # a memory-local generic join over the cell.
        _backtrack(query, tables, schemas, attrs, 0, {}, emitter)


def _backtrack(query, tables, schemas, attrs, i, bound, emitter) -> None:
    if i == len(attrs):
        result = {}
        for e, rows in tables.items():
            # exactly one surviving tuple per relation at a full binding
            result[e] = rows[0]
        emitter.emit(result)
        return
    a = attrs[i]
    holders = [e for e in tables if a in schemas[e]]
    if not holders:
        _backtrack(query, tables, schemas, attrs, i + 1, bound, emitter)
        return
    seed = min(holders, key=lambda e: len(tables[e]))
    pos = schemas[seed].index(a)
    candidates = {t[pos] for t in tables[seed]}
    for e in holders:
        if e == seed:
            continue
        pe = schemas[e].index(a)
        candidates &= {t[pe] for t in tables[e]}
    for value in candidates:
        narrowed = dict(tables)
        dead = False
        for e in holders:
            pe = schemas[e].index(a)
            sub = [t for t in tables[e] if t[pe] == value]
            if not sub:
                dead = True
                break
            narrowed[e] = sub
        if not dead:
            _backtrack(query, narrowed, schemas, attrs, i + 1, bound,
                       emitter)


def lw_query(n: int, sizes=None) -> JoinQuery:
    """Build ``LW_n``: ``e_i`` omits ``v_i`` from ``{v1..vn}``."""
    if n < 3:
        raise ValueError(f"LW joins need n >= 3, got {n}")
    universe = [f"v{i}" for i in range(1, n + 1)]
    edges = {f"e{i}": frozenset(a for a in universe if a != f"v{i}")
             for i in range(1, n + 1)}
    if sizes is None:
        return JoinQuery(edges=edges)
    names = [f"e{i}" for i in range(1, n + 1)]
    if len(sizes) != n:
        raise ValueError(f"LW_{n} needs {n} sizes")
    return JoinQuery(edges=edges, sizes=dict(zip(names, sizes)))