"""The emit model (Section 1.1).

For each join result the algorithm calls an ``emit`` function with all
participating tuples, which must reside in memory at the time of the
call but need not be written to disk.  A result is represented as a
mapping from edge name to that relation's participating tuple.

Emitters:

* :class:`CountingEmitter` — counts results and keeps an
  order-insensitive checksum, so two algorithms can be compared without
  materializing anything (the normal benchmark configuration);
* :class:`CollectingEmitter` — stores every result (tests/oracles);
* :class:`AssignmentEmitter` — converts results to canonical
  attribute→value assignments on the fly, for comparison with the
  internal-memory oracle.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Protocol, Sequence

Result = Mapping[str, tuple]


class Emitter(Protocol):
    """Anything accepting emit-model results."""

    def emit(self, result: Result) -> None:  # pragma: no cover - protocol
        ...


def emit_block(emitter: "Emitter", results: Iterable[Result]) -> None:
    """Hand a whole block of results to ``emitter``.

    The block operators' counterpart to :meth:`Emitter.emit`: emitters
    that implement ``emit_block`` (all the ones in this module) absorb
    the block in one call; duck-typed emitters without it get the
    per-result loop they always got.  Semantically identical to calling
    ``emit`` on each result in order — blocks only amortize the call
    overhead.
    """
    bulk = getattr(emitter, "emit_block", None)
    if bulk is not None:
        bulk(results)
    else:
        emit = emitter.emit
        for r in results:
            emit(r)


class CountingEmitter:
    """Counts emitted results with an order-insensitive checksum.

    The checksum XORs a hash of each result's canonical form, so equal
    result *sets* produce equal ``(count, checksum)`` pairs regardless
    of emission order, and duplicate emissions are detectable through
    the count.
    """

    def __init__(self) -> None:
        self.count = 0
        self.checksum = 0

    def emit(self, result: Result) -> None:
        self.count += 1
        self.checksum ^= hash(frozenset(result.items()))

    def emit_block(self, results: Iterable[Result]) -> None:
        checksum, n = self.checksum, 0
        for r in results:
            checksum ^= hash(frozenset(r.items()))
            n += 1
        self.checksum = checksum
        self.count += n

    def signature(self) -> tuple[int, int]:
        return (self.count, self.checksum)


class CollectingEmitter:
    """Stores every emitted result (tests only — unbounded memory)."""

    def __init__(self) -> None:
        self.results: list[dict[str, tuple]] = []

    def emit(self, result: Result) -> None:
        self.results.append(dict(result))

    def emit_block(self, results: Iterable[Result]) -> None:
        self.results.extend(dict(r) for r in results)

    @property
    def count(self) -> int:
        return len(self.results)

    def result_set(self) -> set[frozenset]:
        """Results as a set (detects duplicates via len() mismatch)."""
        return {frozenset(r.items()) for r in self.results}


class AssignmentEmitter:
    """Converts results to canonical attribute assignments.

    ``schemas`` maps edge names to their physical column tuples; every
    emitted result is flattened to a sorted ``(attribute, value)`` tuple
    (consistency across edges is asserted), matching
    :func:`repro.internal.hashjoin.canonical`.
    """

    def __init__(self, schemas: Mapping[str, Sequence[str]]) -> None:
        self._schemas = {e: tuple(s) for e, s in schemas.items()}
        self.assignments: list[tuple] = []

    def emit(self, result: Result) -> None:
        merged: dict[str, object] = {}
        for edge, t in result.items():
            for attr, value in zip(self._schemas[edge], t):
                if attr in merged and merged[attr] != value:
                    raise AssertionError(
                        f"inconsistent emit: {attr}={merged[attr]!r} vs "
                        f"{value!r} in result {dict(result)}")
                merged[attr] = value
        self.assignments.append(tuple(sorted(merged.items())))

    def emit_block(self, results: Iterable[Result]) -> None:
        for r in results:
            self.emit(r)

    @property
    def count(self) -> int:
        return len(self.assignments)

    def assignment_set(self) -> set[tuple]:
        return set(self.assignments)


class CallbackEmitter:
    """Adapts a plain function to the emitter interface."""

    def __init__(self, fn: Callable[[Result], None]) -> None:
        self._fn = fn

    def emit(self, result: Result) -> None:
        self._fn(result)

    def emit_block(self, results: Iterable[Result]) -> None:
        fn = self._fn
        for r in results:
            fn(r)
