"""Recursion tracing for Algorithm 2 — "explain" output.

A :class:`RecursionTrace` records one event per structural action the
``AcyclicJoin`` recursion takes (bud/island/leaf peel, base-case scan),
with the heavy/light split the leaf handler saw.  It makes the
algorithm's behaviour inspectable::

    trace = RecursionTrace()
    acyclic_join(query, instance, emitter, trace=trace)
    print(trace.render())

Events are cheap metadata (no tuple contents), so tracing full
benchmark runs is fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One recursion step."""

    depth: int
    action: str              # "scan" | "bud" | "island" | "leaf"
    edge: str
    detail: str = ""


@dataclass
class RecursionTrace:
    """Collects :class:`TraceEvent` rows during a run."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, depth: int, action: str, edge: str,
               detail: str = "") -> None:
        self.events.append(TraceEvent(depth=depth, action=action,
                                      edge=edge, detail=detail))

    def counts(self) -> dict[str, int]:
        """How many times each action fired."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.action] = out.get(e.action, 0) + 1
        return out

    def render(self, limit: int | None = 200) -> str:
        """An indented, human-readable recursion transcript."""
        lines = []
        shown = self.events if limit is None else self.events[:limit]
        for e in shown:
            indent = "  " * e.depth
            detail = f"  ({e.detail})" if e.detail else ""
            lines.append(f"{indent}{e.action} {e.edge}{detail}")
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def max_depth(self) -> int:
        return max((e.depth for e in self.events), default=0)
