"""Two-relation joins in external memory (Section 3).

Two algorithms:

* :func:`nested_loop_join` — blocked nested-loop join, ``O(N1·N2/(MB))``
  I/Os, worst-case optimal for two relations (Table 1 row 1): one
  memory load of the outer per inner scan.
* :func:`sort_merge_join` — the instance-optimal hybrid the paper
  describes: sort both relations on the join attribute and merge; a
  value heavy on *both* sides falls back to a nested-loop join of the
  two groups, anything else streams in a single pass.  Total cost
  ``Õ(N1/B + N2/B + Σ_a N1|_{v=a} · N2|_{v=a} / (MB))`` — which is
  ``Õ((N1 + N2)/B + |Q(R)|/(MB))``, instance optimal.

The key observation reused by Algorithm 1 (Section 3): when the two
relations share no heavy value, the hybrid costs just
``Õ(N1/B + N2/B)``.
"""

from __future__ import annotations

from repro.core.emit import Emitter, emit_block
from repro.data.relation import Relation
from repro.em.loaders import Group, group_boundaries, load_chunks


def _shared_attribute(r1: Relation, r2: Relation) -> str | None:
    shared = [a for a in r1.schema.attributes if a in r2.schema]
    if len(shared) > 1:
        raise ValueError(
            f"relations {r1.name}, {r2.name} share {shared}; Berge-acyclic "
            "queries allow at most one shared attribute")
    return shared[0] if shared else None


# em-cost: N^2/(M*B) + N/B -- one full inner scan per memory load of
# the outer relation (Table 1, two-relation row)
def nested_loop_join(r1: Relation, r2: Relation, emitter: Emitter) -> None:
    """Blocked nested-loop join (cross product when nothing is shared).

    The smaller relation plays the outer role (fewer inner rescans).
    """
    attr = _shared_attribute(r1, r2)
    outer, inner = (r1, r2) if len(r1) <= len(r2) else (r2, r1)
    device = outer.device
    if attr is not None:
        o_idx = outer.schema.index(attr)
        i_idx = inner.schema.index(attr)
    o_name, i_name = outer.name, inner.name
    with device.span("nested_loop_join", kind="algorithm",
                     outer=o_name, inner=i_name,
                     n_outer=len(outer), n_inner=len(inner)):
        for chunk in load_chunks(outer.data, device.M):
            if attr is None:
                if device.block_mode:
                    for block in inner.data.scan_blocks():
                        emit_block(emitter, [
                            {o_name: t_out, i_name: t_in}
                            for t_in in block for t_out in chunk])
                else:
                    for t_in in inner.data.scan():
                        for t_out in chunk:
                            emitter.emit({o_name: t_out, i_name: t_in})
            else:
                by_value: dict[object, list[tuple]] = {}
                for t in chunk:
                    by_value.setdefault(t[o_idx], []).append(t)
                if device.block_mode:
                    get = by_value.get
                    for block in inner.data.scan_blocks():
                        emit_block(emitter, [
                            {o_name: t_out, i_name: t_in}
                            for t_in in block
                            for t_out in get(t_in[i_idx], ())])
                else:
                    for t_in in inner.data.scan():
                        for t_out in by_value.get(t_in[i_idx], ()):
                            emitter.emit({o_name: t_out, i_name: t_in})


# em-cost: N^2/(M*B) + N/B -- sort both sides, then merge; only values
# heavy on both sides pay a blocked nested loop (instance optimal, §3)
def sort_merge_join(r1: Relation, r2: Relation, emitter: Emitter) -> None:
    """The instance-optimal two-way join of Section 3.

    Both relations are sorted on the shared attribute, their value
    groups merged; heavy×heavy groups fall back to a blocked nested
    loop, everything else streams with the light side resident.
    """
    attr = _shared_attribute(r1, r2)
    if attr is None:
        nested_loop_join(r1, r2, emitter)
        return
    device = r1.device
    M = device.M
    with device.span("sort_merge_join", kind="algorithm",
                     attr=attr, n1=len(r1), n2=len(r2)):
        s1 = r1.sort_by(attr)
        s2 = r2.sort_by(attr)
        groups1 = group_boundaries(s1.data, s1.key(attr))
        groups2 = group_boundaries(s2.data, s2.key(attr))
        by_value2 = {g.value: g for g in groups2}
        # em-loop-bound: 1 -- Σ over join values: the group sizes sum
        # to N1 and N2, so all per-group joins together cost one
        # nested-loop pass; _join_groups is counted in whole-input units
        for g1 in groups1:
            g2 = by_value2.get(g1.value)
            if g2 is None:
                continue
            _join_groups(s1, g1, s2, g2, M, emitter)


def _join_groups(s1: Relation, g1: Group, s2: Relation, g2: Group,
                 M: int, emitter: Emitter) -> None:
    """Join two equal-value groups: NLJ if both heavy, else one pass."""
    seg1 = s1.data.subsegment(g1.start, g1.stop)
    seg2 = s2.data.subsegment(g2.start, g2.stop)
    n1, n2 = s1.name, s2.name
    block_mode = s1.device.block_mode
    if g1.count >= M and g2.count >= M:
        for chunk in load_chunks(seg1, M):
            if block_mode:
                for block in seg2.scan_blocks():
                    emit_block(emitter, [{n1: t1, n2: t2}
                                         for t2 in block for t1 in chunk])
            else:
                for t2 in seg2.scan():
                    for t1 in chunk:
                        emitter.emit({n1: t1, n2: t2})
    elif g1.count <= g2.count:
        with s1.device.memory.hold(g1.count):
            if block_mode:
                resident = seg1.reader().read_block(g1.count)
                for block in seg2.scan_blocks():
                    emit_block(emitter, [{n1: t1, n2: t2}
                                         for t2 in block
                                         for t1 in resident])
            else:
                resident = list(seg1.scan())
                for t2 in seg2.scan():
                    for t1 in resident:
                        emitter.emit({n1: t1, n2: t2})
    else:
        with s2.device.memory.hold(g2.count):
            if block_mode:
                resident = seg2.reader().read_block(g2.count)
                for block in seg1.scan_blocks():
                    emit_block(emitter, [{n1: t1, n2: t2}
                                         for t1 in block
                                         for t2 in resident])
            else:
                resident = list(seg2.scan())
                for t1 in seg1.scan():
                    for t2 in resident:
                        emitter.emit({n1: t1, n2: t2})
