"""Section 6.3: unbalanced line joins with 6, 7 and 8 relations.

* :func:`line7_unbalanced_join` — **Algorithm 5**: materialize
  ``S = R3 ⋈ R4 ⋈ R5`` with Algorithm 1, then run ``AcyclicJoin`` on
  the residual acyclic query ``{R1, R2, S, R6, R7}`` (the middle
  relation now has two unique attributes), mapping ``S``'s rows back to
  their three participating tuples at emit time.
* :func:`line6_unbalanced_join` — the ``L6`` case: nested-loop join
  with the end relation as the outer and the unbalanced 5-line solved
  by Algorithm 4 as the inner.
* :func:`line7_cover11_join` — the ``L7`` case with optimal cover
  ``(1,1,0,1,0,1,1)``: both end relations become nested-loop outers
  around Algorithm 4 on the middle five.
* :func:`line8_join` — ``L8`` "can be reduced to smaller joins": one
  end becomes a nested-loop outer around the ``L7`` dispatcher.
* :func:`line_join_auto` — the Section 6 dispatcher choosing among all
  of the above based on :func:`repro.query.lines.classify_line`.

The generic composition device is :func:`nlj_outer`: load the outer
relation one memory chunk at a time and re-run the entire inner join
per chunk — cost ``ceil(N_outer/M) × cost(inner)``, exactly the
paper's accounting for these reductions.
"""

from __future__ import annotations

from typing import Callable

from repro.core.acyclic import acyclic_join_best
from repro.core.emit import CallbackEmitter, Emitter
from repro.core.line3 import line3_join
from repro.core.line5 import _materialize_line3, line5_unbalanced_join
from repro.core.twoway import sort_merge_join
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.em.loaders import load_chunks
from repro.query.hypergraph import JoinQuery
from repro.query.lines import classify_line, is_balanced, line_cover
from repro.query.shapes import ChainInfo, detect_line

InnerRunner = Callable[[Emitter], None]


# em-cost: amortized N/B -- one pass over the outer relation; the
# re-run inner join is an opaque callable whose charges are declared
# on the function that constructs it (the N_outer/M multiplier is part
# of that caller's declared bound)
def nlj_outer(outer: Relation, match_attr: str, probe_edge: str,
              probe_attr_index: int, inner: InnerRunner,
              emitter: Emitter) -> None:
    """Nested-loop composition: outer chunks × a re-run inner join.

    For each memory load of ``outer``, the inner join is executed from
    scratch (recharging its I/O — the source of the ``N_outer/M``
    multiplicative factor); every inner result is matched against the
    resident chunk on ``match_attr`` (resolved from ``probe_edge``'s
    tuple at ``probe_attr_index``) and emitted combined.
    """
    device = outer.device
    o_idx = outer.schema.index(match_attr)
    for chunk in load_chunks(outer.data, device.M):
        by_value: dict[object, list[tuple]] = {}
        for t in chunk:
            by_value.setdefault(t[o_idx], []).append(t)

        def on_inner(result, _by_value=by_value):
            value = result[probe_edge][probe_attr_index]
            out = dict(result)
            for t in _by_value.get(value, ()):
                out[outer.name] = t
                emitter.emit(dict(out))

        inner(CallbackEmitter(on_inner))


# ---------------------------------------------------------------------------
# Algorithm 5
# ---------------------------------------------------------------------------

# em-cost: amortized N^3/(M^2*B) + N^2/(M*B) + N/B -- Algorithm 5:
# materialize S = R3⋈R4⋈R5 by Algorithm 1 (Õ(N3·N5/(MB)) plus the
# |S| ≤ N3·N5/M write), then AcyclicJoin on the residual query, whose
# branch cost Section 6.3 bounds by the same unbalanced term
def line7_unbalanced_join(query: JoinQuery, instance: Instance,
                          emitter: Emitter, *, plan_limit: int = 8) -> None:
    """Algorithm 5 on a 7-relation line join."""
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 7:
        raise ValueError("line7_unbalanced_join requires a 7-relation "
                         "line query")
    e = chain.edges                   # e[0..6] = R1..R7
    v = chain.join_attrs              # v[0..5] = v2..v7 (shared attrs)
    r3, r4, r5 = instance[e[2]], instance[e[3]], instance[e[4]]
    with r3.device.span("line7_unbalanced_join", kind="algorithm"):
        _line7_body(query, instance, emitter, plan_limit, e, v,
                    r3, r4, r5)


def _line7_body(query, instance, emitter, plan_limit, e, v,
                r3, r4, r5) -> None:
    # Line 1: S = R3 ⋈ R4 ⋈ R5 by Algorithm 1, written to disk.
    s_rel = _materialize_line3(r3, r4, r5, v[2], v[3], "S")

    # Line 2: the residual acyclic query {R1, R2, S, R6, R7}.
    s_attrs = s_rel.schema.attributes        # chain order (v3..v6)
    edges = {e[0]: query.edges[e[0]], e[1]: query.edges[e[1]],
             "S": frozenset(s_attrs),
             e[5]: query.edges[e[5]], e[6]: query.edges[e[6]]}
    residual_q = JoinQuery(edges=edges)
    residual_inst = Instance({e[0]: instance[e[0]],
                              e[1]: instance[e[1]], "S": s_rel,
                              e[5]: instance[e[5]], e[6]: instance[e[6]]})

    # Emit adapter: split each S row back into its R3, R4, R5 tuples.
    s_pos = {a: i for i, a in enumerate(s_attrs)}
    plan = [(rel.name, [s_pos[a] for a in rel.schema.attributes])
            for rel in (r3, r4, r5)]

    class _Expand:
        def emit(self, result):
            out = {k: t for k, t in result.items() if k != "S"}
            srow = result["S"]
            for name, idxs in plan:
                out[name] = tuple(srow[j] for j in idxs)
            emitter.emit(out)

    # Line 3: AcyclicJoin on the residual query (best peel branch).
    acyclic_join_best(residual_q, residual_inst, _Expand(),
                      limit=plan_limit)


# ---------------------------------------------------------------------------
# L6 / L7-cover-(1,1,0,1,0,1,1) / L8 reductions
# ---------------------------------------------------------------------------

def _subchain_query(query: JoinQuery, chain: ChainInfo,
                    lo: int, hi: int) -> JoinQuery:
    """The line subquery on chain positions ``[lo, hi)``."""
    keep = set(chain.edges[lo:hi])
    return query.drop_edges([e for e in query.edges if e not in keep])


# em-cost: amortized N^4/(M^3*B) + N/B -- one end relation as
# nested-loop outer (N/M memory loads) around Algorithm 4 on the
# other five: (N/M) · N³/(M²B)
def line6_unbalanced_join(query: JoinQuery, instance: Instance,
                          emitter: Emitter) -> None:
    """``L6`` with no balanced split: end relation NLJ over Algorithm 4.

    The paper's case analysis: the optimal cover is ``(1,0,1,0,1,1)``
    (the first five relations unbalanced — outer ``R6``) or its mirror
    (outer ``R1``).
    """
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 6:
        raise ValueError("line6_unbalanced_join requires a 6-relation "
                         "line query")
    sizes = [len(instance[e]) for e in chain.edges]
    if not is_balanced(sizes[:5]):
        outer_pos, lo, hi = 5, 0, 5
    else:
        outer_pos, lo, hi = 0, 1, 6
    _nlj_end_reduction(query, instance, emitter, chain, outer_pos, lo, hi,
                       line5_unbalanced_join)


# em-cost: amortized N^5/(M^4*B) + N/B -- both end relations as
# nested-loop outers (N/M loads each) around Algorithm 4 on the middle
# five: (N/M)² · N³/(M²B)
def line7_cover11_join(query: JoinQuery, instance: Instance,
                       emitter: Emitter) -> None:
    """``L7`` with optimal cover ``(1,1,0,1,0,1,1)`` (or mirrored).

    Both end relations become nested-loop outers around Algorithm 4 on
    the middle five relations — cost
    ``Õ(N1/M · N7/M · cost(Algorithm 4 on R2..R6))``.
    """
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 7:
        raise ValueError("line7_cover11_join requires a 7-relation "
                         "line query")
    middle_q = _subchain_query(query, chain, 1, 6)

    def inner_mid(em: Emitter) -> None:
        line5_unbalanced_join(middle_q, instance, em)

    # Wrap with the R7 outer, then the R1 outer.
    r7 = instance[chain.edges[6]]
    r1 = instance[chain.edges[0]]
    e6 = chain.edges[5]
    e2 = chain.edges[1]
    v7 = chain.join_attrs[5]
    v2 = chain.join_attrs[0]

    def inner_with_r7(em: Emitter) -> None:
        nlj_outer(r7, v7, e6, instance[e6].schema.index(v7), inner_mid, em)

    nlj_outer(r1, v2, e2, instance[e2].schema.index(v2), inner_with_r7,
              emitter)


# em-cost: amortized N^6/(M^5*B) + N/B -- one end as nested-loop
# outer (N/M loads) around the L7 dispatcher's worst case
def line8_join(query: JoinQuery, instance: Instance,
               emitter: Emitter) -> None:
    """``L8`` reduced to smaller joins: end NLJ over the ``L7`` solver."""
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 8:
        raise ValueError("line8_join requires an 8-relation line query")
    sub_q = _subchain_query(query, chain, 0, 7)

    def inner(em: Emitter) -> None:
        line_join_auto(sub_q, instance, em)

    outer = instance[chain.edges[7]]
    e7 = chain.edges[6]
    v8 = chain.join_attrs[6]
    nlj_outer(outer, v8, e7, instance[e7].schema.index(v8), inner, emitter)


def _nlj_end_reduction(query: JoinQuery, instance: Instance,
                       emitter: Emitter, chain: ChainInfo, outer_pos: int,
                       lo: int, hi: int, inner_fn) -> None:
    sub_q = _subchain_query(query, chain, lo, hi)

    def inner(em: Emitter) -> None:
        inner_fn(sub_q, instance, em)

    outer = instance[chain.edges[outer_pos]]
    if outer_pos == 0:
        probe_edge = chain.edges[1]
        attr = chain.join_attrs[0]
    else:
        probe_edge = chain.edges[outer_pos - 1]
        attr = chain.join_attrs[outer_pos - 1]
    nlj_outer(outer, attr, probe_edge,
              instance[probe_edge].schema.index(attr), inner, emitter)


# ---------------------------------------------------------------------------
# The Section 6 dispatcher
# ---------------------------------------------------------------------------

# em-cost: amortized N^6/(M^5*B) + N/B -- dispatcher: the worst
# declared bound among its targets (the L8 end reduction)
def line_join_auto(query: JoinQuery, instance: Instance, emitter: Emitter,
                   *, plan_limit: int = 16) -> str:
    """Dispatch a line join to the paper's per-regime algorithm.

    Returns a label naming the algorithm used (for reports and tests).
    """
    chain = detect_line(query)
    if chain is None:
        raise ValueError("line_join_auto requires a line query")
    n = len(chain.edges)
    sizes = [len(instance[e]) for e in chain.edges]

    if n == 2:
        sort_merge_join(instance[chain.edges[0]], instance[chain.edges[1]],
                        emitter)
        return "two-way-sort-merge"
    if n == 3:
        line3_join(query, instance, emitter)
        return "algorithm-1"

    cls = classify_line(sizes)
    if cls.regime in ("balanced-odd", "balanced-even"):
        acyclic_join_best(query, instance, emitter, limit=plan_limit)
        return "algorithm-2-best-branch"
    if n == 5:
        line5_unbalanced_join(query, instance, emitter)
        return "algorithm-4"
    if n == 6:
        line6_unbalanced_join(query, instance, emitter)
        return "l6-end-nlj+algorithm-4"
    if n == 7:
        cover = line_cover(sizes)
        if cover in ((1, 1, 0, 1, 0, 1, 1), (1, 1, 0, 1, 0, 1, 1)[::-1]):
            line7_cover11_join(query, instance, emitter)
            return "l7-double-nlj+algorithm-4"
        line7_unbalanced_join(query, instance, emitter)
        return "algorithm-5"
    if n == 8:
        line8_join(query, instance, emitter)
        return "l8-end-nlj+l7"
    acyclic_join_best(query, instance, emitter, limit=plan_limit)
    return "algorithm-2-best-branch(optimality-open)"
