"""Algorithm 2: ``AcyclicJoin`` — the paper's main contribution (Section 4).

The recursion peels the query one relation at a time:

* a single remaining relation emits its tuples (line 1–2);
* a **bud** (one join attribute, no unique attribute) is eliminated
  (line 3–4) — see the correctness note below;
* an **island** (no join attribute) is loaded chunk by chunk, the rest
  of the query solved recursively per chunk, and each recursive result
  combined with every memory-resident island tuple (line 5–9);
* otherwise a **leaf** ``e`` is picked *nondeterministically*
  (line 11).  Its relation and all neighbors Γ are sorted on the join
  attribute ``v``.  **Heavy** values ``a`` (≥ ``M`` tuples, §2.3)
  restrict every neighbor to ``R(e')|_{v=a}``, remove both ``e`` and
  ``v`` from the query (possibly disconnecting it), and recurse per
  memory load of ``R(e)|_{v=a}``, cross-combining with the load
  (line 14–20).  **Light** values are loaded value-aligned (< 2M tuples,
  < M distinct values per load); each neighbor is semijoin-filtered
  against the load, ``e`` (but not ``v``) is removed, and recursive
  results are matched back to the load on ``v`` (line 21–27).

Nondeterminism.  The paper simulates all branches round-robin and stops
with the first to finish, attaining the best branch's cost up to a
constant factor (constant query size).  We realize the same guarantee
deterministically: :func:`enumerate_plans` lists every *peel plan* (a
choice of leaf per reachable query structure — exactly the information
a branch of the nondeterministic machine uses), and
:func:`acyclic_join_best` runs each plan on a fresh device, returning
the minimum I/O cost alongside per-plan measurements.

Correctness note on buds (deviation, documented in DESIGN.md).  The
paper's line 3–4 drops a bud outright, which is only sound if every
value of the bud's attribute appearing elsewhere also appears in the
bud — true on fully reduced inputs, but restriction during recursion
can break it.  We therefore semijoin-filter the relations sharing the
bud's attribute against the bud before dropping it (one sort + merge
pass, absorbed by the Õ(·) bounds), and reconstruct the bud's
participating tuple at emit time, keeping the emit model exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.emit import Emitter
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.em.device import Device
from repro.em.loaders import (group_boundaries, load_chunks,
                              load_group_chunks, load_light_chunks,
                              split_heavy_light)
from repro.query.classify import (find_buds, find_islands, find_leaves,
                                  leaf_info)
from repro.query.hypergraph import JoinQuery, require_berge_acyclic

#: Phase names this module attributes I/O to (emlint EM006).
PHASES = ("semijoin",)

EmitFn = Callable[[Mapping[str, tuple]], None]
Chooser = Callable[[JoinQuery, Instance], str]
PlanKey = frozenset
Plan = dict[PlanKey, str]


# ---------------------------------------------------------------------------
# Single-branch execution
# ---------------------------------------------------------------------------

# em-cost: N^6/(M^5*B) + N/B -- one branch of Algorithm 2: the _run
# recursion's declared summary, stated up to the L8 depth the line
# dispatcher handles (Theorems 2-3 give the per-shape tight forms)
def acyclic_join(query: JoinQuery, instance: Instance, emitter: Emitter,
                 chooser: Chooser | None = None, *,
                 paper_literal_buds: bool = False,
                 trace: "RecursionTrace | None" = None) -> None:
    """Run Algorithm 2 with one leaf-choice strategy.

    ``chooser`` picks which leaf to peel given the current (sub)query
    and instance; it defaults to the first leaf in name order.  All I/O
    is charged to the instance's device.

    ``paper_literal_buds`` reproduces the paper's lines 3–4 *verbatim*:
    a bud is dropped without filtering the relations that share its
    attribute.  That is only sound on instances whose restrictions stay
    reduced; on others it **over-emits** (see DESIGN.md inconsistency
    #3 and ``tests/test_ablations.py``).  Leave it off for correct
    results; it exists to make the discrepancy measurable.
    """
    require_berge_acyclic(query)
    _check_alignment(query, instance)
    pick = chooser or first_leaf_chooser
    edges = query.edge_names
    if not edges:
        return
    device = instance[edges[0]].device
    with device.span("acyclic_join", kind="algorithm", edges=len(edges)):
        _run(query, instance, emitter.emit, pick,
             literal_buds=paper_literal_buds, trace=trace)


def first_leaf_chooser(query: JoinQuery, instance: Instance) -> str:
    """Deterministic default: the lexicographically first leaf."""
    return find_leaves(query)[0]


def smallest_leaf_chooser(query: JoinQuery, instance: Instance) -> str:
    """Greedy heuristic: peel the leaf with the fewest tuples.

    Mirrors the paper's remark that a "smart" algorithm compares
    relation sizes before choosing a peeling strategy (Section 4.1's
    ``L_4`` discussion).  Not always best-branch, but a single run.
    """
    return min(find_leaves(query), key=lambda e: (len(instance[e]), e))


def largest_leaf_chooser(query: JoinQuery, instance: Instance) -> str:
    """Greedy heuristic: peel the leaf with the most tuples."""
    return max(find_leaves(query), key=lambda e: (len(instance[e]), e))


def end_chooser(decisions: str) -> Chooser:
    """A staged left/right chooser for line-shaped queries.

    ``decisions[k]`` says which end to peel at stage ``k`` (number of
    leaves already peeled): ``"L"`` = lowest edge index, ``"R"`` =
    highest.  Runs past the string's end keep using its last character.
    This encodes the paper's line-join strategies (e.g. peeling
    ``{e1,e2}`` vs ``{e4,e5}`` first on ``L_5``) as single plans.
    """

    def choose(query: JoinQuery, instance: Instance) -> str:
        leaves = sorted(find_leaves(query), key=_edge_index)
        stage = getattr(choose, "_initial", None)
        if stage is None:
            choose._initial = len(query.edges)  # type: ignore[attr-defined]
        peeled = max(0, choose._initial - len(query.edges))  # type: ignore[attr-defined]
        d = decisions[min(peeled, len(decisions) - 1)] if decisions else "L"
        return leaves[0] if d.upper() == "L" else leaves[-1]

    return choose


def _edge_index(name: str) -> tuple[int, str]:
    digits = "".join(c for c in name if c.isdigit())
    return (int(digits) if digits else 0, name)


def plan_chooser(plan: Plan) -> Chooser:
    """A chooser following a peel plan, falling back to the first leaf."""

    def choose(query: JoinQuery, instance: Instance) -> str:
        return plan.get(query.structure_key()) or find_leaves(query)[0]

    return choose


def _check_alignment(query: JoinQuery, instance: Instance) -> None:
    for e in query.edge_names:
        if e not in instance:
            raise ValueError(f"query edge {e!r} has no relation bound")
        rel = instance[e]
        physical = set(rel.schema.attributes)
        expected = set(query.edges[e]) | set(rel.fixed)
        if physical != expected:
            raise ValueError(
                f"relation {e!r}: physical columns {sorted(physical)} != "
                f"query attrs + fixed {sorted(expected)}")


# em-cost: amortized N^6/(M^5*B) + N/B * log(N/M) -- Algorithm 2's
# recursion: peel depth and branch fan-out are query-size constants;
# each level sorts and semijoins its relations (N/B*log(N/M)) and
# re-runs children once per memory load, multiplying by at most N/M
# per level, stated up to the L8 depth the line dispatcher handles
def _run(query: JoinQuery, inst: Instance, emit: EmitFn,
         pick: Chooser, *, literal_buds: bool = False,
         trace=None, depth: int = 0) -> None:
    edges = query.edge_names
    if not edges:
        return
    if len(edges) == 1:
        e = edges[0]
        if trace is not None:
            trace.record(depth, "scan", e, f"{len(inst[e])} tuples")
        for t in inst[e].data.scan():
            emit({e: t})
        return

    buds = find_buds(query)
    if buds:
        if trace is not None:
            trace.record(depth, "bud", buds[0])
        _peel_bud(query, inst, emit, pick, buds[0],
                  literal=literal_buds, trace=trace, depth=depth)
        return

    islands = find_islands(query)
    if islands:
        if trace is not None:
            trace.record(depth, "island", islands[0],
                         f"{len(inst[islands[0]])} tuples")
        _peel_island(query, inst, emit, pick, islands[0],
                     literal_buds=literal_buds, trace=trace, depth=depth)
        return

    leaf = pick(query, inst)
    if not find_leaves(query) or leaf not in find_leaves(query):
        raise ValueError(f"chooser returned {leaf!r}, not a leaf of "
                         f"{dict(query.edges)}")
    _peel_leaf(query, inst, emit, pick, leaf, literal_buds=literal_buds,
               trace=trace, depth=depth)


# ---------------------------------------------------------------------------
# Bud elimination (lines 3-4, with the correctness-preserving semijoin)
# ---------------------------------------------------------------------------

def _peel_bud(query: JoinQuery, inst: Instance, emit: EmitFn,
              pick: Chooser, bud: str, *, literal: bool = False,
              trace=None, depth: int = 0) -> None:
    (w,) = query.edges[bud]
    bud_rel = inst[bud].sort_by(w)
    sharers = [e for e in query.edge_names
               if e != bud and w in query.edges[e]]

    rebound = dict(inst)
    del rebound[bud]
    if not literal:
        # em-loop-bound: 1 -- one sharer per query edge, and the edge
        # count is a query-size constant
        for e2 in sharers:
            rel2 = inst[e2].sort_by(w)
            rebound[e2] = _merge_semijoin(rel2, bud_rel, w)

    bud_schema = bud_rel.schema
    fixed = dict(bud_rel.fixed)
    w_idx = bud_schema.index(w)

    # Designate one sharer to resolve w's value from child results.
    probe = sharers[0]
    probe_idx = rebound[probe].schema.index(w)

    def child_emit(result: Mapping[str, tuple]) -> None:
        w_val = result[probe][probe_idx]
        t = tuple(w_val if i == w_idx else fixed[a]
                  for i, a in enumerate(bud_schema.attributes))
        out = dict(result)
        out[bud] = t
        emit(out)

    _run(query.drop_edges([bud]), Instance(rebound), child_emit, pick,
         literal_buds=literal, trace=trace, depth=depth + 1)


def _merge_semijoin(rel: Relation, filter_rel: Relation,
                    attr: str) -> Relation:
    """``rel ⋉ filter_rel`` on ``attr``; both sorted on ``attr``.

    One merge pass over both inputs; the (smaller) output is written
    back to disk, preserving sort order on ``attr``.
    """
    key_l = rel.key(attr)
    key_r = filter_rel.key(attr)
    left = rel.data.reader()
    right = filter_rel.data.reader()

    def matches():
        # em-loop-bound: N -- one left tuple per iteration
        while not left.exhausted:
            t = left.next()
            kv = key_l(t)
            # em-loop-bound: 1 -- the right cursor advances
            # monotonically, so its fetches across the whole pass
            # total one scan, counted in whole-pass units
            while not right.exhausted and key_r(right.peek()) < kv:
                right.next()
            if not right.exhausted and key_r(right.peek()) == kv:
                yield t

    with rel.device.phases.phase("semijoin"):
        return rel.rewrite(matches(), label=f"sj_{filter_rel.name}",
                           sorted_on=attr)


# ---------------------------------------------------------------------------
# Island elimination (lines 5-9)
# ---------------------------------------------------------------------------

def _peel_island(query: JoinQuery, inst: Instance, emit: EmitFn,
                 pick: Chooser, island: str, *,
                 literal_buds: bool = False, trace=None,
                 depth: int = 0) -> None:
    child_q = query.drop_edges([island])
    child_inst = inst.drop(island)
    for chunk in load_chunks(inst[island].data, inst[island].device.M):

        def child_emit(result: Mapping[str, tuple]) -> None:
            out = dict(result)
            for t in chunk:
                out[island] = t
                emit(dict(out))

        _run(child_q, child_inst, child_emit, pick,
             literal_buds=literal_buds, trace=trace, depth=depth + 1)


# ---------------------------------------------------------------------------
# Leaf peeling (lines 10-27)
# ---------------------------------------------------------------------------

def _peel_leaf(query: JoinQuery, inst: Instance, emit: EmitFn,
               pick: Chooser, leaf: str, *,
               literal_buds: bool = False, trace=None,
               depth: int = 0) -> None:
    info = leaf_info(query, leaf)
    v = info.join_attr
    device = inst[leaf].device
    M = device.M

    rel_e = inst[leaf].sort_by(v)                       # line 12
    # em-loop-bound: 1 -- one sort per neighbor, and the neighbor
    # count is a query-size constant
    neighbors = {e2: inst[e2].sort_by(v)                # line 13
                 for e2 in sorted(info.neighbors)}

    key_e = rel_e.key(v)
    groups = group_boundaries(rel_e.data, key_e)
    heavy, light = split_heavy_light(groups, M)
    group_sizes = device.metrics.histogram("acyclic.group_tuples")
    for g in groups:
        group_sizes.observe(g.count)

    # em-loop-bound: 1 -- one boundary scan per neighbor, and the
    # neighbor count is a query-size constant
    nb_groups = {
        e2: {g.value: g
             for g in group_boundaries(neighbors[e2].data,
                                       neighbors[e2].key(v))}
        for e2 in neighbors}

    if trace is not None:
        trace.record(depth, "leaf", leaf,
                     f"v={info.join_attr} heavy={len(heavy)} "
                     f"light={len(light)}")
    _peel_leaf_heavy(query, inst, emit, pick, leaf, info, rel_e, neighbors,
                     nb_groups, heavy, M, literal_buds=literal_buds,
                     trace=trace, depth=depth)
    _peel_leaf_light(query, inst, emit, pick, leaf, info, rel_e, neighbors,
                     light, M, literal_buds=literal_buds, trace=trace,
                     depth=depth)


def _peel_leaf_heavy(query, inst, emit, pick, leaf, info, rel_e, neighbors,
                     nb_groups, heavy_groups, M, *,
                     literal_buds: bool = False, trace=None,
                     depth: int = 0) -> None:
    """Lines 14-20: one restricted, disconnected subquery per heavy value."""
    v = info.join_attr
    child_q = (query.drop_edges([leaf])
               .drop_attributes(set(info.unique_attrs) | {v}))
    # em-loop-bound: N/M -- a heavy value owns at least M tuples of
    # R(e) (section 2.3), so at most N/M values are heavy
    for g in heavy_groups:
        a = g.value
        restricted: dict[str, Relation] = {}
        missing = False
        for e2, rel2 in neighbors.items():
            grp = nb_groups[e2].get(a)
            if grp is None:
                missing = True
                break
            restricted[e2] = rel2.restrict(grp.start, grp.stop,
                                           attribute=v, value=a)
        if missing:
            continue  # value a joins with nothing; no I/O needed for it
        rebound = dict(inst)
        del rebound[leaf]
        rebound.update(restricted)
        child_inst = Instance(rebound)
        for chunk in load_group_chunks(rel_e.data, g, M):

            def child_emit(result, _chunk=chunk):
                out = dict(result)
                for t in _chunk:          # all share v = a: cross-combine
                    out[leaf] = t
                    emit(dict(out))

            _run(child_q, child_inst, child_emit, pick,
                 literal_buds=literal_buds, trace=trace, depth=depth + 1)


def _peel_leaf_light(query, inst, emit, pick, leaf, info, rel_e, neighbors,
                     light_groups, M, *, literal_buds: bool = False,
                     trace=None, depth: int = 0) -> None:
    """Lines 21-27: chunked light values with semijoin-filtered neighbors.

    Each neighbor keeps one persistent cursor: the chunks arrive in
    increasing ``v`` order, so computing every ``R(e')(M_1)`` costs a
    single scan of ``R(e')`` in total — the property the paper's
    analysis of lines 22–23 relies on.
    """
    v = info.join_attr
    child_q = query.drop_edges([leaf])
    v_idx = rel_e.schema.index(v)
    cursors = {e2: rel2.data.reader() for e2, rel2 in neighbors.items()}
    nb_vidx = {e2: rel2.schema.index(v) for e2, rel2 in neighbors.items()}

    # Resolve v from any one neighbor when matching child results back.
    probe = sorted(neighbors)[0]
    probe_idx = nb_vidx[probe]

    for chunk in load_light_chunks(rel_e.data, light_groups, M):
        values = {t[v_idx] for t in chunk}
        vmax = max(values)
        by_value: dict[object, list[tuple]] = {}
        for t in chunk:
            by_value.setdefault(t[v_idx], []).append(t)

        rebound = dict(inst)
        del rebound[leaf]
        empty = False
        # em-loop-bound: 1 -- one filter per neighbor, and the
        # neighbor count is a query-size constant
        for e2, rel2 in neighbors.items():
            idx = nb_vidx[e2]
            rd = cursors[e2]
            matched: list[tuple] = []
            while not rd.exhausted and rd.peek()[idx] <= vmax:
                t = rd.next()
                if t[idx] in values:
                    matched.append(t)
            rebound[e2] = rel2.rewrite(matched, label=f"sj_{leaf}",
                                       sorted_on=v)
            if not matched:
                empty = True
        if empty:
            continue
        child_inst = Instance(rebound)

        def child_emit(result, _by_value=by_value):
            w_val = result[probe][probe_idx]
            out = dict(result)
            for t in _by_value.get(w_val, ()):
                out[leaf] = t
                emit(dict(out))

        _run(child_q, child_inst, child_emit, pick,
             literal_buds=literal_buds, trace=trace, depth=depth + 1)


# ---------------------------------------------------------------------------
# Peel plans: deterministic stand-in for the round-robin simulation
# ---------------------------------------------------------------------------

def enumerate_plans(query: JoinQuery, limit: int | None = None
                    ) -> list[Plan]:
    """All consistent leaf-choice strategies over reachable structures.

    A plan assigns one leaf to every query *structure* reachable during
    the recursion (heavy and light children both explored).  Each plan
    corresponds to a branch of the paper's nondeterministic machine;
    running all of them and taking the cheapest realizes the round-robin
    guarantee deterministically.  ``limit`` caps the number of plans
    kept per reachable structure (and overall) — enumeration is
    deterministic, exploring leaves in name order, so truncated sets
    are stable.  Queries with many symmetric leaves (large stars) need
    a limit; their branches are cost-equivalent up to petal renaming.
    """
    memo: dict[frozenset, list[Plan]] = {}
    plans = _plans_for(query, memo, limit)
    if limit is not None:
        plans = plans[:limit]
    return plans


def _plans_for(query: JoinQuery, memo: dict[frozenset, list[Plan]],
               limit: int | None) -> list[Plan]:
    key = query.structure_key()
    if key in memo:
        return memo[key]
    if len(query.edges) <= 1:
        memo[key] = [{}]
        return memo[key]
    buds = find_buds(query)
    if buds:
        memo[key] = _plans_for(query.drop_edges([buds[0]]), memo, limit)
        return memo[key]
    islands = find_islands(query)
    if islands:
        memo[key] = _plans_for(query.drop_edges([islands[0]]), memo, limit)
        return memo[key]

    result: list[Plan] = []
    seen: set[frozenset] = set()
    for leaf in find_leaves(query):
        info = leaf_info(query, leaf)
        heavy_child = (query.drop_edges([leaf])
                       .drop_attributes(set(info.unique_attrs)
                                        | {info.join_attr}))
        light_child = query.drop_edges([leaf])
        for ph in _plans_for(heavy_child, memo, limit):
            for pl in _plans_for(light_child, memo, limit):
                merged = _merge_plans(ph, pl)
                if merged is None:
                    continue
                merged[key] = leaf
                sig = frozenset(merged.items())
                if sig not in seen:
                    seen.add(sig)
                    result.append(merged)
                if limit is not None and len(result) >= limit:
                    memo[key] = result
                    return result
    memo[key] = result
    return result


def _merge_plans(a: Plan, b: Plan) -> Plan | None:
    merged = dict(a)
    for k, choice in b.items():
        if merged.setdefault(k, choice) != choice:
            return None
    return merged


# ---------------------------------------------------------------------------
# Best-branch execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanRun:
    """Measured cost of one peel plan."""

    plan: Plan
    reads: int
    writes: int
    emitted: int
    checksum: int

    @property
    def io(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class BestRun:
    """Result of running every peel plan and keeping the cheapest."""

    runs: tuple[PlanRun, ...]
    best_index: int

    @property
    def best(self) -> PlanRun:
        return self.runs[self.best_index]

    @property
    def io(self) -> int:
        """Best-branch I/O — the quantity Theorem 3 bounds."""
        return self.best.io

    @property
    def round_robin_io(self) -> int:
        """Pessimistic round-robin cost: #branches × best branch."""
        return len(self.runs) * self.best.io


# em-cost: N^6/(M^5*B) + N/B -- every peel plan (a query-constant
# number, capped by ``limit``) runs one Algorithm 2 branch on a cloned
# device, then the best branch runs once for real
def acyclic_join_best(query: JoinQuery, instance: Instance,
                      emitter: Emitter | None = None, *,
                      limit: int | None = None) -> BestRun:
    """Run Algorithm 2 under every peel plan; keep the cheapest.

    Each plan is *explored* on a fresh device (same ``M``, ``B``) with
    the input relations copied free of charge, so measured per-branch
    I/O is clean.  All branches are checked to emit identical result
    sets.  When ``emitter`` is given, the best branch is then run for
    real on the *original* instance — its device is charged exactly the
    best branch's cost, which is the quantity Theorem 3 bounds (the
    paper's round-robin simulation pays the same up to the constant
    branch count, reported as :attr:`BestRun.round_robin_io`).
    """
    from repro.core.emit import CountingEmitter

    plans = enumerate_plans(query, limit=limit)
    if not plans:
        plans = [{}]
    runs: list[PlanRun] = []
    # em-loop-bound: 1 -- the peel-plan count depends only on query
    # structure (and is capped by ``limit``), a query-size constant in
    # data-complexity terms
    for plan in plans:
        dev, inst = clone_instance(instance)
        counter = CountingEmitter()
        acyclic_join(query, inst, counter, chooser=plan_chooser(plan))
        runs.append(PlanRun(plan=plan, reads=dev.stats.reads,
                            writes=dev.stats.writes, emitted=counter.count,
                            checksum=counter.checksum))
    signatures = {(r.emitted, r.checksum) for r in runs}
    if len(signatures) > 1:
        raise AssertionError(
            f"peel plans disagree on the result set: {sorted(signatures)}")
    best_index = min(range(len(runs)), key=lambda i: runs[i].io)
    if instance:
        # Exploration runs on cloned throw-away devices; record the
        # branch cost distribution on the real device's registry.
        metrics = next(iter(instance.values())).device.metrics
        branch_io = metrics.histogram("acyclic.branch_io")
        for r in runs:
            branch_io.observe(r.io)
        metrics.counter("acyclic.branches").inc(len(runs))
    if emitter is not None:
        acyclic_join(query, instance, emitter,
                     chooser=plan_chooser(runs[best_index].plan))
    return BestRun(runs=tuple(runs), best_index=best_index)


def clone_instance(instance: Instance,  # em-effects: FREE_PEEK -- re-creates pre-existing inputs on a fresh device; the copy models "the input is already on disk", so reading it must not bill the candidate run
                   M: int | None = None, B: int | None = None
                   ) -> tuple[Device, Instance]:
    """Copy an instance onto a fresh device (inputs written free)."""
    devices = {rel.device for rel in instance.values()}
    if len(devices) != 1:
        raise ValueError("instance spans multiple devices")
    (src,) = devices
    dev = Device(M=M or src.M, B=B or src.B,
                 mem_slack=src.memory.slack,
                 strict_memory=src.memory.strict,
                 buffer_pool=src.pool_config)
    rels = {}
    for name, rel in instance.items():
        rels[name] = Relation.from_tuples(dev, rel.schema,
                                          rel.peek_tuples())
    return dev, Instance(rels)
