"""Algorithm 4: the unbalanced 5-relation line join (Section 6.3).

When ``N1·N3·N5 < N2·N4`` the worst-case instance construction of
Theorem 5 is infeasible and Algorithm 2 stops being optimal; the I/O
lower bound drops to ``Õ(N1·N3·N5/(M²B) + N2/B + N4/B)`` (plus the
independent-pair terms).  Algorithm 4 achieves it:

1. run Algorithm 1 on ``(R1, R2, R3)``, writing the results ``S`` to
   disk (``Õ(N1·N3/(MB))`` to compute; ``O(N1·N3/B)`` to write — the
   write is affordable exactly because the target bound for the
   unbalanced case carries the larger ``N1·N3·N5/(M²B)`` term);
2. run Algorithm 1 on ``(R3, R4, R5)``, writing ``T``;
3. sort ``R3``, ``S`` and ``T`` by ``(v3, v4)`` lexicographically;
4. for each ``t ∈ R3``: semijoin ``S(t) = S ⋉ t`` and ``T(t) = T ⋉ t``
   (one coordinated scan across the loop), then emit
   ``S(t) ⋈ T(t)`` by blocked nested loop — ``|S(t)| ≤ N1`` and
   ``|T(t)| ≤ N5`` because a fixed ``(v3, v4)`` pins the ``R2``/``R4``
   tuple per ``R1``/``R5`` tuple.

Emitted results carry all five participating tuples (recovered by
projection from the materialized path rows; relations are sets, so the
projection is exact).
"""

from __future__ import annotations

from repro.core.emit import CallbackEmitter, Emitter
from repro.core.line3 import _line3
from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.em.file import EMFile
from repro.em.loaders import load_chunks
from repro.em.sort import external_sort
from repro.query.hypergraph import JoinQuery
from repro.query.shapes import detect_line


# em-cost: N^3/(M^2*B) + N^2/(M*B) + N/B -- the unbalanced lower
# bound of Section 6.3, matched by Algorithm 4 (checked against _line5)
def line5_unbalanced_join(query: JoinQuery, instance: Instance,
                          emitter: Emitter) -> None:
    """Run Algorithm 4 on a 5-relation line join."""
    chain = detect_line(query)
    if chain is None or len(chain.edges) != 5:
        raise ValueError("line5_unbalanced_join requires a 5-relation "
                         "line query")
    e1, e2, e3, e4, e5 = chain.edges
    v2, v3, v4, v5 = chain.join_attrs
    rels = [instance[e] for e in chain.edges]
    with rels[0].device.span("line5_unbalanced_join", kind="algorithm",
                             sizes=[len(r) for r in rels]):
        _line5(rels, [v2, v3, v4, v5], emitter)


def _materialize_line3(r_a: Relation, r_b: Relation, r_c: Relation,
                       va: str, vb: str, label: str) -> Relation:
    """Run Algorithm 1 and write the 4-attribute path rows to disk."""
    device = r_a.device
    out = device.new_file(label)
    writer = out.writer()
    name_a, name_b, name_c = r_a.name, r_b.name, r_c.name
    # Path row layout: a's non-shared attr, va, vb, c's non-shared attr —
    # i.e. the four attributes in chain order.
    a_first = [x for x in r_a.schema.attributes if x != va][0]
    c_last = [x for x in r_c.schema.attributes if x != vb][0]
    ia0 = r_a.schema.index(a_first)
    ia1 = r_a.schema.index(va)
    ib1 = r_b.schema.index(vb)
    ic1 = r_c.schema.index(c_last)

    def write_row(result, _w=writer):
        ta, tb, tc = result[name_a], result[name_b], result[name_c]
        _w.append((ta[ia0], ta[ia1], tb[ib1], tc[ic1]))

    _line3(r_a, r_b, r_c, va, vb, CallbackEmitter(write_row))
    writer.close()
    schema = RelationSchema(label, (a_first, va, vb, c_last))
    return Relation(schema=schema, data=out.whole())


# em-cost: amortized N^3/(M^2*B) + N^2/(M*B) + N/B -- lines 5-8 are a
# Σ over R3's (v3,v4) pairs: the span scans are one coordinated pass of
# S and T, and Σ ceil(|S(t)|/M)·|T(t)|/B ≤ N1·N3·N5/(M²B) + N·N5/(MB)
# because a fixed (v3,v4) pins the R2/R4 tuple per R1/R5 tuple
def _line5(rels: list[Relation], joins: list[str],
           emitter: Emitter) -> None:
    r1, r2, r3, r4, r5 = rels
    v2, v3, v4, v5 = joins
    device = r1.device
    M = device.M

    # Lines 1-2: the two overlapping 3-line joins, written to disk.
    s_rel = _materialize_line3(r1, r2, r3, v2, v3, "S")   # (v1,v2,v3,v4)
    t_rel = _materialize_line3(r3, r4, r5, v4, v5, "T")   # (v3,v4,v5,v6)

    # Line 3-4: sort R3, S, T by (v3, v4) lexicographically.
    key34_r3 = r3.schema.multi_key((v3, v4))
    r3s_file = external_sort(r3.data, key34_r3, name="R3.by34")
    s_key = s_rel.schema.multi_key((v3, v4))
    t_key = t_rel.schema.multi_key((v3, v4))
    s_file = external_sort(s_rel.data, s_key, name="S.by34")
    t_file = external_sort(t_rel.data, t_key, name="T.by34")

    # Lines 5-8: coordinated scan over R3's (v3, v4) pairs.
    s_reader = s_file.reader()
    t_reader = t_file.reader()
    projections = _projection_plan(rels, s_rel, t_rel)

    for t3 in r3s_file.reader():
        pair = key34_r3(t3)
        s_span = _advance_span(s_reader, s_key, pair)
        t_span = _advance_span(t_reader, t_key, pair)
        if s_span[0] == s_span[1] or t_span[0] == t_span[1]:
            continue
        _emit_block(s_file.segment(*s_span), t_file.segment(*t_span), t3,
                    projections, emitter, device, M)


def _projection_plan(rels: list[Relation], s_rel: Relation,
                     t_rel: Relation):
    """How to rebuild each input tuple from the S-row / T-row / R3 tuple.

    Returns ``(edge name, source, index list)`` triples where source is
    ``"S"``, ``"T"`` or ``"R3"``; indices are positions in that source
    row, ordered by the edge's own schema.
    """
    r1, r2, r3, r4, r5 = rels
    s_pos = {a: i for i, a in enumerate(s_rel.schema.attributes)}
    t_pos = {a: i for i, a in enumerate(t_rel.schema.attributes)}
    plan = []
    for rel, source, pos in ((r1, "S", s_pos), (r2, "S", s_pos),
                             (r4, "T", t_pos), (r5, "T", t_pos)):
        plan.append((rel.name, source,
                     [pos[a] for a in rel.schema.attributes]))
    plan.append((r3.name, "R3", list(range(len(r3.schema.attributes)))))
    return plan


def _advance_span(reader, key, pair) -> tuple[int, int]:
    """Locate the contiguous run with key == pair (keys ascend with R3).

    The boundary scan reads (and discards) rows — one total pass of the
    file across the whole ``R3`` loop; the run itself is re-read from
    its segment by the blocked nested loop.
    """
    while not reader.exhausted and key(reader.peek()) < pair:
        reader.next()
    start = reader.position
    while not reader.exhausted and key(reader.peek()) == pair:
        reader.next()
    return start, reader.position


def _emit_block(s_seg, t_seg, t3: tuple, projections, emitter: Emitter,
                device, M: int) -> None:
    """Line 8: S(t) ⋈ T(t) by blocked nested loop, emitting 5-way results.

    Holds ``M`` rows of ``S(t)`` in memory and re-reads ``T(t)`` once
    per block — ``ceil(|S(t)|/M) · |T(t)|/B`` I/Os, the term the
    paper's accounting charges for line 8.  Each path row projects back
    to its participating input tuples.
    """
    for block in load_chunks(s_seg, M):
        for trow in t_seg.scan():
            for srow in block:
                sources = {"S": srow, "T": trow, "R3": t3}
                emitter.emit({
                    name: tuple(sources[src][j] for j in idxs)
                    for name, src, idxs in projections})
