"""External-memory full reducer (Yannakakis phase one, with I/O charges).

Two semijoin passes over the ear-elimination order of
:func:`repro.query.reduce.elimination_order`; each semijoin sorts both
sides on the shared attribute and performs one merge pass, writing the
filtered relation back to disk.  Total cost ``Õ(Σ N(e)/B)`` — the
linear term the paper's bounds absorb.

The paper's optimality statements assume fully reduced inputs
(Section 1.2); the planner runs this reducer first unless told the
input is already reduced.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.query.hypergraph import JoinQuery
from repro.query.reduce import elimination_order


# em-cost: N/B * log(N/M) -- two semijoin sweeps over the elimination
# order, each sorting and merge-scanning every relation once
def full_reduce_em(query: JoinQuery, instance: Instance) -> Instance:
    """Return a fully reduced copy of ``instance`` (I/O charged)."""
    rels: dict[str, Relation] = dict(instance)
    steps = elimination_order(query)
    # em-loop-bound: 1 -- one semijoin per query edge, and the edge
    # count is query-size (constant in data-complexity terms); the
    # per-edge Σ N(e) is what the semijoin's own N/B accounts
    for step in steps:  # upward: parents filtered by children
        if step.parent is None:
            continue
        rels[step.parent] = _semijoin_em(rels[step.parent],
                                         rels[step.edge], step.shared_attr)
    # em-loop-bound: 1 -- the mirrored downward sweep, same accounting
    for step in reversed(steps):  # downward: children by parents
        if step.parent is None:
            continue
        rels[step.edge] = _semijoin_em(rels[step.edge],
                                       rels[step.parent], step.shared_attr)
    return Instance(rels)


def _semijoin_em(rel: Relation, filt: Relation, attr: str) -> Relation:
    """``rel ⋉ filt`` on ``attr`` by sort + merge, written back to disk."""
    rel_s = rel.sort_by(attr)
    filt_s = filt.sort_by(attr)
    key_l = rel_s.key(attr)
    key_r = filt_s.key(attr)
    left = rel_s.data.reader()
    right = filt_s.data.reader()

    if rel.device.block_mode:
        matches = _matches_blocked(left, right, key_l, key_r)
    else:
        matches = _matches_scalar(left, right, key_l, key_r)
    return rel_s.rewrite(matches, label=f"red_{filt.name}",
                         sorted_on=attr)


def _matches_scalar(left, right, key_l, key_r):
    """Tuple-at-a-time merge pass (the block_mode=False reference)."""
    while not left.exhausted:
        t = left.next()
        kv = key_l(t)
        while not right.exhausted and key_r(right.peek()) < kv:
            right.next()
        if not right.exhausted and key_r(right.peek()) == kv:
            yield t


def _matches_blocked(left, right, key_l, key_r):
    """Page-block merge pass: same charges, a fraction of the calls.

    Both cursors advance through materialized page blocks; each page is
    charged once when entered, exactly when the scalar pass would have
    peeked into it.  The right side keeps its current page's keys
    precomputed so the per-left-tuple advance is one :func:`bisect`
    (C speed) within the page — pages exhausted below the probe key
    are fetched exactly when the scalar pass's boundary peek would
    have charged them.
    """
    rblock: list = []
    rkeys: list = []
    ri = 0
    # em-loop-bound: N/B -- one left page block per iteration
    while not left.exhausted:
        lblock = left.read_page_block()
        # em-loop-bound: 1 -- the right cursor advances monotonically,
        # so all probe fetches across the whole pass total one scan;
        # the inner advance is counted in whole-pass units
        for t, kv in zip(lblock, map(key_l, lblock)):
            # em-loop-bound: 1 -- fetches at most one new right page
            # beyond the shared single pass
            while True:
                if ri >= len(rblock):
                    if right.exhausted:
                        rblock, rkeys, ri = [], [], 0
                        break
                    rblock = right.read_page_block()
                    rkeys = list(map(key_r, rblock))
                    ri = 0
                ri = bisect_left(rkeys, kv, ri)
                if ri < len(rkeys):
                    break
            if ri < len(rblock) and rkeys[ri] == kv:
                yield t
