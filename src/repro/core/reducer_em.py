"""External-memory full reducer (Yannakakis phase one, with I/O charges).

Two semijoin passes over the ear-elimination order of
:func:`repro.query.reduce.elimination_order`; each semijoin sorts both
sides on the shared attribute and performs one merge pass, writing the
filtered relation back to disk.  Total cost ``Õ(Σ N(e)/B)`` — the
linear term the paper's bounds absorb.

The paper's optimality statements assume fully reduced inputs
(Section 1.2); the planner runs this reducer first unless told the
input is already reduced.
"""

from __future__ import annotations

from repro.data.instance import Instance
from repro.data.relation import Relation
from repro.query.hypergraph import JoinQuery
from repro.query.reduce import elimination_order


def full_reduce_em(query: JoinQuery, instance: Instance) -> Instance:
    """Return a fully reduced copy of ``instance`` (I/O charged)."""
    rels: dict[str, Relation] = dict(instance)
    steps = elimination_order(query)
    for step in steps:  # upward: parents filtered by children
        if step.parent is None:
            continue
        rels[step.parent] = _semijoin_em(rels[step.parent],
                                         rels[step.edge], step.shared_attr)
    for step in reversed(steps):  # downward: children by parents
        if step.parent is None:
            continue
        rels[step.edge] = _semijoin_em(rels[step.edge],
                                       rels[step.parent], step.shared_attr)
    return Instance(rels)


def _semijoin_em(rel: Relation, filt: Relation, attr: str) -> Relation:
    """``rel ⋉ filt`` on ``attr`` by sort + merge, written back to disk."""
    rel_s = rel.sort_by(attr)
    filt_s = filt.sort_by(attr)
    key_l = rel_s.key(attr)
    key_r = filt_s.key(attr)
    left = rel_s.data.reader()
    right = filt_s.data.reader()

    def matches():
        while not left.exhausted:
            t = left.next()
            kv = key_l(t)
            while not right.exhausted and key_r(right.peek()) < kv:
                right.next()
            if not right.exhausted and key_r(right.peek()) == kv:
                yield t

    return rel_s.rewrite(matches(), label=f"red_{filt.name}",
                         sorted_on=attr)
